"""In-kernel trial-block threading and the threaded sweep backend.

The contract under test is *bit-identity by construction*: the native
kernels shard trials into contiguous blocks whose per-trial arithmetic
is untouched by the thread count, and the chunked runners' layout/merge
order never depends on the execution backend.  Every test here compares
full float64 arrays with ``np.array_equal`` (no tolerances).
"""

import numpy as np
import pytest

from repro.core import _native
from repro.core._native import (
    native_available,
    native_threading_mode,
    resolve_n_threads,
)
from repro.core.batch import (
    ba_final_weights_batch,
    bahf_final_weights_batch,
    hf_final_weights_batch,
)
from repro.experiments.checkpoint import execute_chunks
from repro.experiments.config import (
    BACKENDS,
    StochasticConfig,
    normalize_backend,
)
from repro.experiments.runner import run_sweep
from repro.experiments.runtime_study import run_study_cells, study_trial_metrics
from repro.experiments.stochastic import trial_ratios
from repro.problems import UniformAlpha
from repro.simulator import MachineConfig
from repro.utils.rng import SeedSequenceFactory

SAMPLER = UniformAlpha(0.1, 0.5)
THREAD_COUNTS = [1, 2, 7, 64]


def _draws(n_trials, n, seed=123):
    factory = SeedSequenceFactory(seed)
    rngs = [factory.generator_for(t) for t in range(n_trials)]
    return SAMPLER.sample_trial_matrix(rngs, n - 1)


class TestResolveNThreads:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "5")
        assert resolve_n_threads(3) == 3

    def test_env_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "6")
        assert resolve_n_threads() == 6

    @pytest.mark.parametrize("raw", ["", "auto", "0", " AUTO "])
    def test_auto_values_use_cpu_count(self, monkeypatch, raw):
        import os

        monkeypatch.setenv("REPRO_NATIVE_THREADS", raw)
        assert resolve_n_threads() == (os.cpu_count() or 1)

    @pytest.mark.parametrize("raw", ["-1", "1.5", "many"])
    def test_bad_env_rejected(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", raw)
        with pytest.raises(ValueError, match="REPRO_NATIVE_THREADS"):
            resolve_n_threads()

    def test_explicit_zero_rejected(self):
        with pytest.raises(ValueError, match="n_threads"):
            resolve_n_threads(0)


@pytest.mark.skipif(not native_available(), reason="no system C compiler")
class TestKernelThreadInvariance:
    """Every kernel is bit-identical for every thread count."""

    def test_threading_mode_reported(self):
        assert native_threading_mode() in ("pthread", "openmp", "serial")

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS)
    def test_hf(self, n_threads):
        draws = _draws(23, 129)
        base = hf_final_weights_batch(1.0, 129, draws, method="native")
        out = hf_final_weights_batch(
            1.0, 129, draws, method="native", n_threads=n_threads
        )
        assert np.array_equal(out, base)

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS)
    def test_ba(self, n_threads):
        draws = _draws(23, 129)
        base = ba_final_weights_batch(1.0, 129, draws, method="native")
        out = ba_final_weights_batch(
            1.0, 129, draws, method="native", n_threads=n_threads
        )
        assert np.array_equal(out, base)

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS)
    def test_bahf(self, n_threads):
        draws = _draws(23, 129)
        base = bahf_final_weights_batch(
            1.0, 129, draws, alpha=0.1, method="native"
        )
        out = bahf_final_weights_batch(
            1.0, 129, draws, alpha=0.1, method="native", n_threads=n_threads
        )
        assert np.array_equal(out, base)

    @pytest.mark.parametrize("n_threads", THREAD_COUNTS)
    def test_phf_metrics(self, n_threads):
        from repro.core.phf import phf_threshold

        n = 128
        draws = _draws(19, n)
        kw = dict(
            w0=1.0,
            threshold=phf_threshold(1.0, 0.1, n),
            alpha=0.1,
            keep_heavy=True,
            t_bisect=1.0,
            t_acquire=0.1,
            t_send=0.1,
            collective=0.05,
        )
        base = _native.phf_metrics_native(draws, n, **kw)
        out = _native.phf_metrics_native(draws, n, n_threads=n_threads, **kw)
        assert base is not None and out is not None
        for got, want in zip(out, base):
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("n_threads", [2, 16])
    def test_trial_ratios_invariant(self, n_threads):
        base = trial_ratios(
            "bahf", 64, SAMPLER, n_trials=40, seed=9, n_threads=1
        )
        out = trial_ratios(
            "bahf", 64, SAMPLER, n_trials=40, seed=9, n_threads=n_threads
        )
        assert np.array_equal(out, base)

    @pytest.mark.parametrize("n_threads", [2, 16])
    def test_study_metrics_invariant(self, n_threads):
        base = study_trial_metrics(
            "phf",
            64,
            SAMPLER,
            n_trials=12,
            seed=9,
            config=MachineConfig(),
            engine="fastpath",
            n_threads=1,
        )
        out = study_trial_metrics(
            "phf",
            64,
            SAMPLER,
            n_trials=12,
            seed=9,
            config=MachineConfig(),
            engine="fastpath",
            n_threads=n_threads,
        )
        assert np.array_equal(out, base)


class TestBackendValidation:
    def test_known_backends(self):
        assert BACKENDS == ("processes", "threads")
        assert normalize_backend("Threads") == "threads"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            normalize_backend("fibers")

    def test_execute_chunks_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            execute_chunks(
                [1], lambda t: t, keys=["k"], n_jobs=1, backend="fibers"
            )

    def test_run_sweep_rejects_unknown_backend(self):
        config = StochasticConfig.paper_table1(
            n_trials=4, n_values=(4,), seed=1
        )
        with pytest.raises(ValueError, match="backend"):
            run_sweep(config, backend="fibers")

    def test_execute_chunks_threads_pool(self):
        out = execute_chunks(
            [1, 2, 3, 4],
            lambda t: t * 2,
            keys=["a", "b", "c", "d"],
            n_jobs=2,
            backend="threads",
        )
        assert out == [2, 4, 6, 8]


class TestSweepBackends:
    def config(self, **overrides):
        kw = dict(n_trials=12, n_values=(4, 8), seed=11, chunk_size=4)
        kw.update(overrides)
        return StochasticConfig.paper_table1(**kw)

    def test_threads_matches_serial_and_processes(self):
        serial = run_sweep(self.config())
        procs = run_sweep(self.config(n_jobs=2), backend="processes")
        threads = run_sweep(self.config(n_jobs=2), backend="threads")
        assert threads.records == serial.records
        assert threads.records == procs.records

    def test_cross_backend_resume(self, tmp_path):
        """A journal written under one backend resumes under the other."""
        plain = run_sweep(self.config())
        journal = tmp_path / "s.jsonl"
        run_sweep(
            self.config(n_jobs=2), backend="threads", journal_path=journal
        )
        lines = journal.read_text().splitlines(keepends=True)
        keep = 1 + (len(lines) - 1) // 2
        journal.write_text("".join(lines[:keep]) + '{"kind": "chu')
        resumed = run_sweep(
            self.config(n_jobs=2),
            backend="processes",
            journal_path=journal,
            resume=True,
        )
        assert resumed.records == plain.records

    def test_resume_processes_journal_under_threads(self, tmp_path):
        plain = run_sweep(self.config())
        journal = tmp_path / "s.jsonl"
        run_sweep(self.config(), journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: len(lines) // 2]))
        resumed = run_sweep(
            self.config(n_jobs=2),
            backend="threads",
            journal_path=journal,
            resume=True,
        )
        assert resumed.records == plain.records


class TestStudyBackends:
    def cells(self):
        return [
            (("phf", 16), "phf", 16, MachineConfig()),
            (("ba", 16), "ba", 16, MachineConfig()),
        ]

    def run(self, **overrides):
        kw = dict(n_trials=10, seed=5, chunk_size=4)
        kw.update(overrides)
        return run_study_cells(self.cells(), SAMPLER, **kw)

    def test_threads_matches_serial_and_processes(self):
        serial = self.run()
        procs = self.run(n_jobs=2, backend="processes")
        threads = self.run(n_jobs=2, backend="threads")
        assert set(serial) == set(procs) == set(threads)
        for key in serial:
            assert np.array_equal(threads[key], serial[key])
            assert np.array_equal(procs[key], serial[key])

    def test_cross_backend_resume(self, tmp_path):
        plain = self.run()
        journal = tmp_path / "study.jsonl"
        self.run(n_jobs=2, backend="threads", journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: len(lines) // 2]))
        resumed = self.run(
            n_jobs=2,
            backend="processes",
            journal_path=journal,
            resume=True,
        )
        for key in plain:
            assert np.array_equal(resumed[key], plain[key])
