"""Tests for the crash-safe chunk journal and resumable execution."""

import json

import pytest

from repro.experiments.checkpoint import (
    JOURNAL_FORMAT_VERSION,
    ChunkJournal,
    ChunkQuarantinedError,
    JournalError,
    JournalMismatchError,
    _entry_crc,
    compact_journal,
    execute_chunks,
    fingerprint_digest,
    inspect_journal,
    repair_journal,
)
from repro.experiments.config import StochasticConfig
from repro.experiments.runner import run_sweep, sweep_fingerprint

FP = {"kind": "test", "seed": 7}


def _double(task):
    return task * 2


class _Flaky:
    """Fails the first ``n_failures`` calls, then succeeds."""

    def __init__(self, n_failures):
        self.remaining = n_failures

    def __call__(self, task):
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("transient")
        return task * 2


class TestChunkJournal:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", {"x": 1})
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["format"] == JOURNAL_FORMAT_VERSION
        assert header["sha256"] == fingerprint_digest(FP)
        entry = json.loads(lines[1])
        crc = entry.pop("crc32")
        assert entry == {"kind": "chunk", "key": "a:0", "payload": {"x": 1}}
        assert crc == _entry_crc("a:0", {"x": 1})

    def test_resume_loads_completed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 1.5, "a:8": 2.5}

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "does-not-exist.jsonl"
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {}
        assert path.exists()

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        with path.open("a") as fh:
            fh.write('{"kind": "chunk", "key": "a:8", "pay')
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 1.5}

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        # corrupting a NON-trailing line is real damage, not a torn tail
        text = path.read_text()
        assert '"key":"a:0"' in text
        path.write_text(text.replace('"key":"a:0"', '"key":"a:0'))
        with pytest.raises(JournalError, match="corrupt"):
            ChunkJournal.open(path, fingerprint=FP, resume=True)

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ChunkJournal.open(path, fingerprint=FP).close()
        with pytest.raises(JournalMismatchError, match="different run"):
            ChunkJournal.open(
                path, fingerprint={"kind": "test", "seed": 8}, resume=True
            )

    def test_no_resume_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            assert journal.completed == {}
        assert len(path.read_text().splitlines()) == 1


class TestJournalFormat2:
    def test_duplicate_record_raises(self, tmp_path):
        with ChunkJournal.open(tmp_path / "j.jsonl", fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            with pytest.raises(JournalError, match="duplicate"):
                journal.record("a:0", 2.5)
            # the guard left the journal untouched
            assert journal.completed == {"a:0": 1.5}

    def test_checksum_detects_payload_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        # flip one payload digit: the line is still valid JSON and a
        # valid chunk shape -- only the checksum can catch it
        text = path.read_text()
        assert '"payload":1.5' in text
        path.write_text(text.replace('"payload":1.5', '"payload":1.6'))
        with pytest.raises(JournalError, match="checksum") as info:
            ChunkJournal.open(path, fingerprint=FP, resume=True)
        assert "line 2" in str(info.value)

    def test_checksum_corruption_on_last_line_is_fatal(self, tmp_path):
        # a torn write is never parseable JSON, so a parseable last line
        # with a bad checksum is bit rot -- NOT a tolerable torn tail
        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        text = path.read_text()
        path.write_text(text.replace('"payload":1.5', '"payload":1.6'))
        with pytest.raises(JournalError, match="checksum"):
            ChunkJournal.open(path, fingerprint=FP, resume=True)

    def test_duplicate_key_in_v2_file_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        line = path.read_text().splitlines()[1]
        with path.open("a") as fh:
            fh.write(line + "\n")
        with pytest.raises(JournalError, match="duplicate"):
            ChunkJournal.open(path, fingerprint=FP, resume=True)

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        header = {
            "kind": "header",
            "format": 99,
            "fingerprint": FP,
            "sha256": fingerprint_digest(FP),
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError, match="format"):
            ChunkJournal.open(path, fingerprint=FP, resume=True)


def _write_v1_journal(path, fingerprint, entries):
    """Hand-write a format-1 journal (no per-line checksums)."""
    lines = [
        json.dumps(
            {
                "kind": "header",
                "format": 1,
                "fingerprint": fingerprint,
                "sha256": fingerprint_digest(fingerprint),
            }
        )
    ]
    for key, payload in entries:
        lines.append(json.dumps({"kind": "chunk", "key": key, "payload": payload}))
    path.write_text("\n".join(lines) + "\n")


class TestJournalFormat1Compat:
    def test_v1_journal_still_resumes(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        _write_v1_journal(path, FP, [("a:0", 1.5), ("a:8", 2.5)])
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 1.5, "a:8": 2.5}
            assert journal.format_version == 1

    def test_v1_resume_appends_v1_lines(self, tmp_path):
        # one file never mixes formats: appends follow the header
        path = tmp_path / "v1.jsonl"
        _write_v1_journal(path, FP, [("a:0", 1.5)])
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            journal.record("a:8", 2.5)
        last = json.loads(path.read_text().splitlines()[-1])
        assert "crc32" not in last
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 1.5, "a:8": 2.5}

    def test_v1_duplicates_last_wins(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        _write_v1_journal(path, FP, [("a:0", 1.5), ("a:0", 9.5)])
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 9.5}


class TestJournalMaintenance:
    def _corrupt_payload(self, path):
        text = path.read_text()
        assert '"payload":1.5' in text
        path.write_text(text.replace('"payload":1.5', '"payload":1.6'))

    def test_inspect_clean_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        status = inspect_journal(path)
        assert status.ok
        assert status.format == JOURNAL_FORMAT_VERSION
        assert (status.n_chunks, status.n_keys) == (2, 2)
        assert not status.torn_tail

    def test_inspect_reports_issue_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        self._corrupt_payload(path)
        status = inspect_journal(path)
        assert not status.ok
        assert [issue.lineno for issue in status.issues] == [2]
        assert "checksum" in status.issues[0].reason

    def test_repair_drops_corrupt_lines(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        self._corrupt_payload(path)
        before, kept = repair_journal(path)
        assert not before.ok
        assert kept == 1
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:8": 2.5}

    def test_compact_upgrades_v1_to_v2(self, tmp_path):
        path = tmp_path / "v1.jsonl"
        _write_v1_journal(path, FP, [("a:0", 1.5), ("a:0", 9.5), ("a:8", 2.5)])
        _, kept = compact_journal(path)
        assert kept == 2
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["format"] == JOURNAL_FORMAT_VERSION
        for line in lines[1:]:
            entry = json.loads(line)
            assert entry["crc32"] == _entry_crc(entry["key"], entry["payload"])
        # loader equivalence: v1 last-wins survived the upgrade
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 9.5, "a:8": 2.5}

    def test_journal_cli_verify_and_repair(self, tmp_path, capsys):
        from repro.experiments.journal_cli import journal_main

        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        assert journal_main(["verify", str(path)]) == 0
        assert "OK" in capsys.readouterr().out
        self._corrupt_payload(path)
        assert journal_main(["verify", str(path)]) == 1
        assert "checksum" in capsys.readouterr().out
        assert journal_main(["repair", str(path)]) == 0
        capsys.readouterr()
        assert journal_main(["verify", str(path)]) == 0

    def test_journal_cli_status_and_missing_file(self, tmp_path, capsys):
        from repro.experiments.journal_cli import journal_main

        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        assert journal_main(["status", str(path)]) == 0
        out = capsys.readouterr().out
        assert "1 distinct keys" in out
        assert journal_main(["status", str(tmp_path / "nope.jsonl")]) == 1
        assert "no such journal" in capsys.readouterr().err

    def test_cli_dispatches_journal_subcommand(self, tmp_path, capsys):
        from repro.experiments.cli import main

        path = tmp_path / "j.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        assert main(["journal", "verify", str(path)]) == 0
        assert "OK" in capsys.readouterr().out


class TestExecuteChunks:
    def test_results_in_task_order(self):
        out = execute_chunks(
            [3, 1, 2], _double, keys=["k3", "k1", "k2"], n_jobs=1
        )
        assert out == [6, 2, 4]

    def test_journal_replay_skips_completed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("k1", 1111)

            def boom(task):
                raise AssertionError("completed chunk must not re-run")

            out = execute_chunks(
                [1], boom, keys=["k1"], n_jobs=1, journal=journal
            )
        assert out == [1111]

    def test_fresh_chunks_are_journaled(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            execute_chunks(
                [1, 2], _double, keys=["k1", "k2"], n_jobs=1, journal=journal
            )
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"k1": 2, "k2": 4}

    def test_encode_decode_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            execute_chunks(
                [1],
                _double,
                keys=["k1"],
                n_jobs=1,
                journal=journal,
                encode=lambda r: {"value": r},
            )
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            out = execute_chunks(
                [1],
                _double,
                keys=["k1"],
                n_jobs=1,
                journal=journal,
                decode=lambda p: p["value"],
            )
        assert out == [2]

    def test_retries_transient_failures(self):
        out = execute_chunks(
            [5], _Flaky(2), keys=["k"], n_jobs=1, retries=2
        )
        assert out == [10]

    def test_retries_exhausted_raises(self):
        with pytest.raises(RuntimeError, match="transient"):
            execute_chunks([5], _Flaky(3), keys=["k"], n_jobs=1, retries=2)

    def test_key_count_must_match(self):
        with pytest.raises(ValueError, match="keys"):
            execute_chunks([1, 2], _double, keys=["k1"], n_jobs=1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            execute_chunks([1], _double, keys=["k1"], n_jobs=1, retries=-1)


class TestSweepResume:
    def config(self, **overrides):
        kw = dict(n_trials=12, n_values=(4, 8), seed=11, chunk_size=4)
        kw.update(overrides)
        return StochasticConfig.paper_table1(**kw)

    def test_journaled_run_matches_plain(self, tmp_path):
        config = self.config()
        plain = run_sweep(config)
        journaled = run_sweep(config, journal_path=tmp_path / "s.jsonl")
        assert journaled.records == plain.records

    def test_truncated_resume_is_bit_identical(self, tmp_path):
        config = self.config()
        plain = run_sweep(config)
        journal = tmp_path / "s.jsonl"
        run_sweep(config, journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        keep = 1 + (len(lines) - 1) // 2
        journal.write_text("".join(lines[:keep]) + '{"kind": "chu')
        resumed = run_sweep(config, journal_path=journal, resume=True)
        assert resumed.records == plain.records

    def test_resume_with_different_n_jobs_is_exact(self, tmp_path):
        plain = run_sweep(self.config())
        journal = tmp_path / "s.jsonl"
        run_sweep(self.config(), journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: len(lines) // 2]))
        resumed = run_sweep(
            self.config(n_jobs=4), journal_path=journal, resume=True
        )
        assert resumed.records == plain.records

    def test_fingerprint_excludes_n_jobs(self):
        assert sweep_fingerprint(self.config()) == sweep_fingerprint(
            self.config(n_jobs=4)
        )

    def test_fingerprint_tracks_config(self):
        assert sweep_fingerprint(self.config()) != sweep_fingerprint(
            self.config(seed=12)
        )

    def test_mismatched_config_refuses_resume(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        run_sweep(self.config(), journal_path=journal)
        with pytest.raises(JournalMismatchError):
            run_sweep(
                self.config(seed=12), journal_path=journal, resume=True
            )


class TestStudyResume:
    def test_truncated_resume_is_bit_identical(self, tmp_path):
        import numpy as np

        from repro.experiments.runtime_study import run_study_cells
        from repro.problems.samplers import UniformAlpha

        cells = [("ba-4", "ba", 4, None), ("hf-8", "hf", 8, None)]
        kw = dict(
            cells=cells,
            sampler=UniformAlpha(0.1, 0.5),
            n_trials=6,
            seed=3,
            chunk_size=2,
        )
        plain = run_study_cells(**kw)
        journal = tmp_path / "study.jsonl"
        run_study_cells(**kw, journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: 1 + (len(lines) - 1) // 2]))
        resumed = run_study_cells(**kw, journal_path=journal, resume=True)
        assert sorted(plain) == sorted(resumed)
        for key in plain:
            assert np.array_equal(plain[key], resumed[key])


class TestFaultStudyResume:
    def test_truncated_resume_is_bit_identical(self, tmp_path):
        from repro.experiments.fault_study import run_fault_study

        kw = dict(
            algorithms=("ba",),
            n_values=(8,),
            fault_rates=(0.0, 0.2),
            n_trials=6,
            seed=13,
            chunk_size=2,
        )
        plain = run_fault_study(**kw)
        journal = tmp_path / "fault.jsonl"
        run_fault_study(**kw, journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: 1 + (len(lines) - 1) // 2]))
        resumed = run_fault_study(**kw, journal_path=journal, resume=True)
        assert [r.as_dict() for r in resumed.records] == [
            r.as_dict() for r in plain.records
        ]
