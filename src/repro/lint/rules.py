"""The built-in rule set (R001–R010).

Each rule machine-enforces one invariant the reproduction's correctness
argument rests on: explicit SplitMix64-style seeding (Theorem 3's
``PHF == HF`` equality requires every bisection to be a pure function of
its node seed), bit-identical reductions for any ``n_jobs``, and the
``0 < α ≤ 1/2`` precondition of Definition 1.  Rules are deliberately
syntactic -- no type inference -- so every finding is cheap to verify
by eye and suppressible per line with ``# repro-lint: disable=R00x``.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Sequence, Set, Union

from repro.lint.findings import Finding
from repro.lint.registry import LintContext, Rule, register

__all__ = [
    "UnseededRngRule",
    "GlobalRandomRule",
    "WallClockRule",
    "FloatEqualityRule",
    "AlphaValidationRule",
    "SeedKeywordOnlyRule",
    "SetIterationRule",
    "PoolPicklableRule",
    "SwallowedExceptionRule",
    "SharedMemoryOutsideHelperRule",
]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: numpy.random module-level functions that mutate hidden global state.
_NP_GLOBAL_STATE = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "normal", "uniform", "choice", "shuffle",
        "permutation", "standard_normal", "exponential", "poisson",
        "binomial", "beta", "gamma", "lognormal", "pareto", "weibull",
        "geometric", "bytes",
    }
)

#: Callables whose return value depends on the wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.asctime",
        "time.localtime",
        "time.gmtime",
        "time.strftime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Executor / pool methods that pickle their callable into a child process.
_POOL_SUBMIT_METHODS = frozenset(
    {
        "submit", "map", "starmap", "apply", "apply_async",
        "map_async", "starmap_async", "imap", "imap_unordered",
    }
)


def _function_nodes(tree: ast.Module) -> Iterator[FunctionNode]:
    """All function/method definitions in the module, any nesting depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _positional_params(fn: FunctionNode) -> List[ast.arg]:
    """Positionally-bindable parameters, with leading self/cls stripped."""
    params = list(fn.args.posonlyargs) + list(fn.args.args)
    if params and params[0].arg in ("self", "cls"):
        params = params[1:]
    return params


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: Set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.Lambda):
                visit(child, True)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return nested


@register
class UnseededRngRule(Rule):
    rule_id = "R001"
    name = "unseeded-rng"
    description = (
        "numpy Generators must be constructed from an explicit seed; "
        "numpy.random module-level distribution calls use hidden global state."
    )
    rationale = (
        "An unseeded Generator draws OS entropy, so two runs of the same "
        "experiment disagree and the PHF == HF bit-equality of Theorem 3 "
        "becomes unverifiable.  All randomness must flow from the "
        "SplitMix64 discipline in repro.utils.rng."
    )
    bad = "import numpy as np\nrng = np.random.default_rng()\n"
    good = "import numpy as np\nrng = np.random.default_rng(seed)\n"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve(node.func)
            if target == "numpy.random.default_rng":
                unseeded = not node.args and not node.keywords
                none_arg = (
                    len(node.args) == 1
                    and isinstance(node.args[0], ast.Constant)
                    and node.args[0].value is None
                )
                if unseeded or none_arg:
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.random.default_rng() without an explicit seed; "
                        "derive one via repro.utils.rng (split_seed/child_seed)",
                    )
            elif (
                target is not None
                and target.startswith("numpy.random.")
                and target.rsplit(".", 1)[1] in _NP_GLOBAL_STATE
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() uses numpy's hidden global RNG state; "
                    "use an explicitly seeded Generator instead",
                )


@register
class GlobalRandomRule(Rule):
    rule_id = "R002"
    name = "global-random"
    description = "the stdlib `random` module (process-global state) is banned."
    rationale = (
        "`random` shares one mutable state across the whole process, so any "
        "import -- even in a helper -- lets library code perturb experiment "
        "streams.  Worker processes fork that state and silently correlate "
        "trials across n_jobs."
    )
    bad = "import random\nx = random.random()\n"
    good = "rng = np.random.default_rng(seed)\nx = rng.random()\n"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            ctx,
                            node,
                            "import of stdlib `random` (process-global RNG state); "
                            "use numpy Generators seeded via repro.utils.rng",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    yield self.finding(
                        ctx,
                        node,
                        "from-import of stdlib `random` (process-global RNG "
                        "state); use numpy Generators seeded via repro.utils.rng",
                    )


@register
class WallClockRule(Rule):
    rule_id = "R003"
    name = "wall-clock"
    description = (
        "wall-clock reads (time.time, datetime.now, ...) are nondeterministic "
        "inputs and are banned in kernel paths."
    )
    rationale = (
        "Kernel code (repro.core / repro.simulator / repro.problems) must be "
        "a pure function of its inputs; a wall-clock read is an untracked "
        "input that breaks replay.  Timing measurements belong in driver "
        "code and should use time.perf_counter, which R003 permits."
    )
    bad = "import time\nstamp = time.time()\n"
    good = "import time\nelapsed = time.perf_counter() - t0\n"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            target = ctx.resolve(node.func)
            if target in _WALL_CLOCK:
                yield self.finding(
                    ctx,
                    node,
                    f"{target}() reads the wall clock (nondeterministic); "
                    "use time.perf_counter for durations or pass timestamps in",
                )


@register
class FloatEqualityRule(Rule):
    rule_id = "R004"
    name = "float-equality"
    description = (
        "`==`/`!=` against float literals or ratio expressions is banned in "
        "core/metrics code; use a tolerance helper."
    )
    rationale = (
        "Weights and ratios accumulate rounding differently along different "
        "merge orders; exact float comparison makes results depend on "
        "n_jobs and platform.  Route comparisons through "
        "repro.utils.mathutils.feq / is_zero."
    )
    bad = "if ratio == 1.0:\n    pass\n"
    good = "from repro.utils.mathutils import feq\nif feq(ratio, 1.0):\n    pass\n"

    @staticmethod
    def _float_risky(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            return True
        if isinstance(node, ast.UnaryOp):
            return FloatEqualityRule._float_risky(node.operand)
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands: List[ast.expr] = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if self._float_risky(left) or self._float_risky(right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact float ==/!= comparison; use "
                        "repro.utils.mathutils.feq/is_zero (tolerance-based)",
                    )
                    break


@register
class AlphaValidationRule(Rule):
    rule_id = "R005"
    name = "alpha-validated"
    description = (
        "public functions taking an `alpha` parameter must validate it "
        "(check_alpha or an explicit range check) or delegate it onward."
    )
    rationale = (
        "Definition 1 requires 0 < alpha <= 1/2; outside that range the "
        "bound formulas of Theorems 2-4 silently produce garbage (negative "
        "logs, division by zero).  Validation at every public entry point "
        "keeps the precondition machine-checked."
    )
    bad = "def depth(alpha):\n    return 1.0 / alpha\n"
    good = "def depth(alpha):\n    alpha = check_alpha(alpha)\n    return 1.0 / alpha\n"

    @staticmethod
    def _param_names(fn: FunctionNode) -> List[str]:
        args = fn.args
        return [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]

    @staticmethod
    def _body_handles_alpha(fn: FunctionNode) -> bool:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                target = node.func
                callee = target.attr if isinstance(target, ast.Attribute) else (
                    target.id if isinstance(target, ast.Name) else ""
                )
                if callee == "check_alpha":
                    return True
                # Delegation: alpha handed to another callable, which is
                # where check_alpha becomes reachable.
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id == "alpha":
                        return True
                    if isinstance(arg, ast.Starred):
                        continue
                for kw in node.keywords:
                    if isinstance(kw.value, ast.Name) and kw.value.id == "alpha":
                        return True
            elif isinstance(node, ast.Compare):
                # Only ordered comparisons count as a range check;
                # `alpha is not None` alone does not validate anything.
                if not any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                ):
                    continue
                for operand in (node.left, *node.comparators):
                    if isinstance(operand, ast.Name) and operand.id == "alpha":
                        return True
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for fn in _function_nodes(ctx.tree):
            if fn.name.startswith("_") and fn.name != "__init__":
                continue
            if "alpha" not in self._param_names(fn):
                continue
            if not self._body_handles_alpha(fn):
                yield self.finding(
                    ctx,
                    fn,
                    f"function `{fn.name}` takes `alpha` but neither "
                    "validates it (check_alpha / range check) nor passes it on",
                )


@register
class SeedKeywordOnlyRule(Rule):
    rule_id = "R006"
    name = "seed-keyword-only"
    description = (
        "public functions taking a `seed` parameter must declare it "
        "keyword-only (unless seed is the sole leading subject argument)."
    )
    rationale = (
        "A positional seed gets silently swallowed by an argument-order "
        "change, re-seeding every caller with a different stream.  "
        "Keyword-only seeds make seeding explicit at every call site and "
        "grep-able across the tree."
    )
    bad = "def run(n, seed=0):\n    pass\n"
    good = "def run(n, *, seed=0):\n    pass\n"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for fn in _function_nodes(ctx.tree):
            if fn.name.startswith("_") and fn.name != "__init__":
                continue
            params = _positional_params(fn)
            for index, param in enumerate(params):
                if param.arg == "seed" and index > 0:
                    yield self.finding(
                        ctx,
                        fn,
                        f"`seed` is positionally bindable in `{fn.name}`; "
                        "declare it keyword-only (after `*`)",
                    )


@register
class SetIterationRule(Rule):
    rule_id = "R007"
    name = "set-iteration"
    description = (
        "iterating directly over a set literal / set() call is banned: "
        "ordering varies across processes and hash seeds."
    )
    rationale = (
        "Reduction and merge paths must visit elements in one canonical "
        "order or parallel results stop being bit-identical to the scalar "
        "path.  Python set iteration order depends on insertion history "
        "and PYTHONHASHSEED; wrap the set in sorted(...)."
    )
    bad = "for n in {3, 1, 2}:\n    pass\n"
    good = "for n in sorted({3, 1, 2}):\n    pass\n"

    @staticmethod
    def _is_bare_set(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_bare_set(it):
                    yield self.finding(
                        ctx,
                        it,
                        "iteration over a bare set (order depends on hash "
                        "seed / insertion history); iterate sorted(...) instead",
                    )


@register
class PoolPicklableRule(Rule):
    rule_id = "R008"
    name = "pool-picklable"
    description = (
        "callables submitted to process pools must be module-level "
        "functions, not lambdas or closures."
    )
    rationale = (
        "Process pools pickle the callable; lambdas and nested functions "
        "either fail to pickle or -- worse -- capture Generator state that "
        "forks differently per worker, decorrelating trial streams.  "
        "Module-level functions keep the task payload explicit and "
        "reproducible."
    )
    bad = (
        "with ProcessPoolExecutor() as pool:\n"
        "    fut = pool.submit(lambda: work(1))\n"
    )
    good = (
        "def run_one(i):\n    return work(i)\n\n"
        "with ProcessPoolExecutor() as pool:\n"
        "    fut = pool.submit(run_one, 1)\n"
    )

    @staticmethod
    def _uses_process_pools(ctx: LintContext) -> bool:
        if any(v.startswith("multiprocessing") for v in ctx.aliases.values()):
            return True
        return "ProcessPoolExecutor" in ctx.source

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        if not self._uses_process_pools(ctx):
            return
        nested = _nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in _POOL_SUBMIT_METHODS
            ):
                continue
            if not node.args:
                continue
            payload = node.args[0]
            if isinstance(payload, ast.Lambda):
                yield self.finding(
                    ctx,
                    payload,
                    f"lambda submitted to .{func.attr}(); process pools "
                    "need a picklable module-level function",
                )
            elif isinstance(payload, ast.Name) and payload.id in nested:
                yield self.finding(
                    ctx,
                    payload,
                    f"nested function `{payload.id}` submitted to "
                    f".{func.attr}(); move it to module level so it pickles "
                    "without capturing local state",
                )


@register
class SwallowedExceptionRule(Rule):
    rule_id = "R009"
    name = "swallowed-exception"
    description = (
        "no bare `except:` and no `except Exception:` whose body only "
        "passes -- failures must surface or be handled."
    )
    rationale = (
        "A reproduction's credibility rests on loud failure: a swallowed "
        "exception can silently truncate a sweep, drop a chunk from a "
        "journal or mask a broken invariant, and the resulting artifact "
        "looks complete while being wrong.  Catch the narrowest exception "
        "that the recovery actually handles, and do something in the "
        "handler (log, degrade, re-raise)."
    )
    bad = (
        "try:\n"
        "    value = compute()\n"
        "except Exception:\n"
        "    pass\n"
    )
    good = (
        "try:\n"
        "    value = compute()\n"
        "except ValueError as exc:\n"
        "    raise SimulationError('bad cell') from exc\n"
    )

    _BROAD = frozenset({"Exception", "BaseException"})

    @staticmethod
    def _body_is_noop(body: Sequence[ast.stmt]) -> bool:
        for stmt in body:
            if isinstance(stmt, ast.Pass):
                continue
            if isinstance(stmt, ast.Expr) and isinstance(
                stmt.value, ast.Constant
            ):
                continue  # docstring or `...`
            return False
        return True

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        node = handler.type
        if isinstance(node, ast.Name):
            return node.id in self._BROAD
        if isinstance(node, ast.Attribute):
            return node.attr in self._BROAD
        return False

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches everything including "
                    "KeyboardInterrupt/SystemExit; name the exception "
                    "(at most `Exception`) and handle it",
                )
            elif self._is_broad(node) and self._body_is_noop(node.body):
                yield self.finding(
                    ctx,
                    node,
                    "broad exception handler silently discards the error; "
                    "catch the narrowest type the recovery handles, or "
                    "log/degrade/re-raise in the handler",
                )


@register
class SharedMemoryOutsideHelperRule(Rule):
    rule_id = "R010"
    name = "shared-memory-outside-helper"
    description = (
        "multiprocessing.shared_memory may only be used inside "
        "repro/experiments/shm.py -- everything else goes through its "
        "publish/attach/release helpers."
    )
    rationale = (
        "A SharedMemory segment is a kernel object with a manual "
        "lifecycle: every create needs a close+unlink, every attach a "
        "close, and POSIX resource-tracker registration differs between "
        "owners and pool workers.  Scattering raw segments across call "
        "sites is how /dev/shm fills up with leaked draw matrices after "
        "a crashed sweep; repro.experiments.shm centralizes the "
        "lifecycle (budget, naming, cached attach, atexit close) so "
        "leaks can be reasoned about in one file."
    )
    bad = (
        "from multiprocessing import shared_memory\n"
        "block = shared_memory.SharedMemory(create=True, size=n)\n"
    )
    good = (
        "from repro.experiments import shm\n"
        "published = shm.publish_draws(draws)\n"
    )

    _BLESSED_SUFFIX = "repro/experiments/shm.py"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        path = ctx.path.replace("\\", "/")
        if path.endswith(self._BLESSED_SUFFIX):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[:2] == [
                        "multiprocessing",
                        "shared_memory",
                    ]:
                        yield self.finding(
                            ctx,
                            node,
                            "direct multiprocessing.shared_memory import; "
                            "use repro.experiments.shm helpers so the "
                            "segment lifecycle stays centralized",
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                hit = module.startswith("multiprocessing.shared_memory") or (
                    module == "multiprocessing"
                    and any(a.name == "shared_memory" for a in node.names)
                )
                if hit:
                    yield self.finding(
                        ctx,
                        node,
                        "direct multiprocessing.shared_memory import; "
                        "use repro.experiments.shm helpers so the "
                        "segment lifecycle stays centralized",
                    )
            elif isinstance(node, ast.Attribute):
                resolved = ctx.resolve(node)
                if resolved is not None and resolved.startswith(
                    "multiprocessing.shared_memory."
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "direct multiprocessing.shared_memory use; "
                        "use repro.experiments.shm helpers so the "
                        "segment lifecycle stays centralized",
                    )
