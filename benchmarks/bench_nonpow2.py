"""Bench E4 -- non-power-of-two processor counts.

Paper: "experiments with values of N that were not powers of 2 gave very
similar results".
"""

import pytest

from repro.experiments.nonpow2_study import (
    render_nonpow2_study,
    run_nonpow2_study,
)

from _common import full_scale, run_once, write_artifact


def test_nonpow2_reproduction(benchmark):
    n_trials = 1000 if full_scale() else 300
    result = run_once(
        benchmark,
        lambda: run_nonpow2_study(exponents=(6, 8, 10), n_trials=n_trials),
    )
    write_artifact("nonpow2_study", render_nonpow2_study(result))

    for algo in ("hf", "bahf", "ba"):
        # "very similar": within a few percent of the neighbouring power
        assert result.max_relative_difference(algo) < 0.08, algo

    benchmark.extra_info["max_rel_diff_pct"] = {
        algo: round(100 * result.max_relative_difference(algo), 2)
        for algo in ("hf", "bahf", "ba")
    }
