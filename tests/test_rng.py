"""Unit tests for repro.utils.rng: deterministic seed derivation."""

import numpy as np
import pytest

from repro.utils.rng import (
    SeedSequenceFactory,
    child_seed,
    ensure_generator,
    split_seed,
)


class TestSplitSeed:
    def test_deterministic(self):
        # duplicate forks are the point here: asserting determinism
        assert split_seed(42, 0) == split_seed(42, 0)  # repro-lint: disable=R102
        assert split_seed(42, 7) == split_seed(42, 7)  # repro-lint: disable=R102

    def test_different_indices_differ(self):
        seeds = {split_seed(42, i) for i in range(1000)}
        assert len(seeds) == 1000

    def test_different_parents_differ(self):
        assert split_seed(1, 0) != split_seed(2, 0)

    def test_output_is_64_bit(self):
        for i in range(100):
            s = split_seed(123456789, i)
            assert 0 <= s < 2**64

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            split_seed(1, -1)

    def test_no_collisions_across_parents_and_indices(self):
        seeds = set()
        for parent in range(50):
            for idx in range(50):
                seeds.add(split_seed(parent, idx))
        assert len(seeds) == 2500

    def test_large_parent_wraps_to_64_bits(self):
        # parents beyond 64 bits are masked, not rejected
        assert split_seed(2**64 + 5, 0) == split_seed(5, 0)


class TestChildSeed:
    def test_empty_path_is_identity(self):
        assert child_seed(99) == 99

    def test_path_matches_iterated_split(self):
        assert child_seed(7, 0, 1) == split_seed(split_seed(7, 0), 1)

    def test_sibling_paths_differ(self):
        assert child_seed(7, 0, 0) != child_seed(7, 0, 1)

    def test_left_right_asymmetric(self):
        # path [0,1] must differ from [1,0]
        assert child_seed(7, 0, 1) != child_seed(7, 1, 0)


class TestEnsureGenerator:
    def test_accepts_none(self):
        assert isinstance(ensure_generator(None), np.random.Generator)

    def test_accepts_int_and_is_deterministic(self):
        a = ensure_generator(5).random(4)
        b = ensure_generator(5).random(4)
        assert np.array_equal(a, b)

    def test_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_generator(gen) is gen

    def test_accepts_seed_sequence(self):
        ss = np.random.SeedSequence(11)
        assert isinstance(ensure_generator(ss), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            # deliberately invalid seed: asserting the rejection path
            ensure_generator("not a seed")  # repro-lint: disable=R101


class TestSeedSequenceFactory:
    def test_reproducible(self):
        f1, f2 = SeedSequenceFactory(10), SeedSequenceFactory(10)
        assert [f1.seed_for(i) for i in range(5)] == [
            f2.seed_for(i) for i in range(5)
        ]

    def test_trials_independent(self):
        fac = SeedSequenceFactory(10)
        assert len({fac.seed_for(i) for i in range(500)}) == 500

    def test_generator_for_is_seeded(self):
        fac = SeedSequenceFactory(10)
        a = fac.generator_for(3).random(4)
        b = fac.generator_for(3).random(4)
        assert np.array_equal(a, b)

    def test_random_root_when_none(self):
        # two factories without explicit roots should (overwhelmingly) differ
        roots = {SeedSequenceFactory().root_seed for _ in range(4)}
        assert len(roots) > 1

    def test_root_seed_property(self):
        assert SeedSequenceFactory(123).root_seed == 123
