"""FE-tree problems: the paper's motivating finite-element application.

The authors' parallel FEM solver (recursive substructuring, refs [1,6,7])
produces an *unbalanced binary tree* (the FE-tree) whose nodes carry
computational cost; to parallelise, the FE-tree must be split into subtrees
distributed over the processors.  "Useful bisection methods for FE-trees"
are reported in [1]; the one implemented here is the natural *best-edge
split*: remove the subtree whose total cost is closest to half, yielding
two forest pieces.

Since the actual FEM code is not available, :func:`random_fe_tree`
generates synthetic unbalanced FE-trees with controllable skew -- the
substitution preserves the relevant behaviour (a concrete problem class
whose per-node bisector quality varies and is *not* an i.i.d. draw).

Representation: immutable nodes with structural sharing.  Bisecting never
copies the split-off subtree; only the ancestors of the removed node are
rebuilt, so a full HF run over a tree with ``M`` nodes stays ``O(M log M)``
in memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.problem import BisectableProblem, check_alpha

__all__ = ["FENode", "FETreeProblem", "random_fe_tree"]


@dataclass(frozen=True)
class FENode:
    """An immutable FE-tree node: own cost plus up to two children."""

    cost: float
    left: Optional["FENode"] = None
    right: Optional["FENode"] = None

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError(f"node cost must be positive, got {self.cost}")

    @property
    def children(self) -> Tuple["FENode", ...]:
        return tuple(c for c in (self.left, self.right) if c is not None)

    def total_cost(self) -> float:
        """Sum of costs in the subtree (iterative; trees can be deep)."""
        total = 0.0
        stack = [self]
        while stack:
            node = stack.pop()
            total += node.cost
            stack.extend(node.children)
        return total

    def size(self) -> int:
        """Number of nodes in the subtree."""
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            count += 1
            stack.extend(node.children)
        return count


class FETreeProblem(BisectableProblem):
    """A (sub-)FE-tree to be processed by one processor group.

    The bisection removes the subtree hanging below the *best edge*: the
    edge whose lower endpoint's subtree cost is closest to ``w(p)/2``.
    Both parts are again FE-trees (the remainder keeps the original root).
    Ties are broken deterministically by pre-order position, so bisection
    is a pure function of the tree -- no randomness involved at all.
    """

    def __init__(self, root: FENode, *, alpha: Optional[float] = None) -> None:
        super().__init__()
        if root is None:
            raise ValueError("root must be an FENode")
        self._root = root
        self._weight = root.total_cost()
        self._alpha = None if alpha is None else check_alpha(alpha)

    # ------------------------------------------------------------------

    @property
    def weight(self) -> float:
        return self._weight

    @property
    def root(self) -> FENode:
        return self._root

    @property
    def n_nodes(self) -> int:
        return self._root.size()

    @property
    def can_bisect(self) -> bool:
        """Single-node trees are atomic."""
        return self._root.children != ()

    def _bisect_once(self) -> Tuple["FETreeProblem", "FETreeProblem"]:
        if not self.can_bisect:
            raise ValueError(
                "cannot bisect a single-node FE-tree: ask for at most as "
                "many pieces as there are tree nodes"
            )
        split = self._find_best_split()
        removed, remainder = split
        return (
            FETreeProblem(removed, alpha=self._alpha),
            FETreeProblem(remainder, alpha=self._alpha),
        )

    # -- internals ------------------------------------------------------

    def _find_best_split(self) -> Tuple[FENode, FENode]:
        """Locate the best edge and rebuild the remainder tree.

        Returns ``(removed_subtree, remainder_root)``.  The search walks the
        tree once computing subtree sums, picks the non-root node whose
        subtree cost is closest to half the total (pre-order tie-break),
        then rebuilds only the ancestor path of the removed node.
        """
        target = self._weight / 2.0
        # Pre-order walk recording (node, path) with path = list of
        # (ancestor, is_left_child) pairs; keep the best candidate.
        best_score = float("inf")
        best_path: Optional[List[Tuple[FENode, bool]]] = None
        best_node: Optional[FENode] = None
        # Iterative DFS carrying the path; subtree sums are computed once
        # into a dict keyed by id() (nodes are shared, never mutated).
        sums = _subtree_sums(self._root)
        stack: List[Tuple[FENode, List[Tuple[FENode, bool]]]] = [(self._root, [])]
        while stack:
            node, path = stack.pop()
            if path:  # non-root nodes are candidates
                score = abs(sums[id(node)] - target)
                if score < best_score - 1e-15:
                    best_score = score
                    best_path = path
                    best_node = node
            # push right first so left is processed first (pre-order)
            if node.right is not None:
                stack.append((node.right, path + [(node, False)]))
            if node.left is not None:
                stack.append((node.left, path + [(node, True)]))

        assert best_node is not None and best_path is not None
        remainder = _rebuild_without(best_path)
        return best_node, remainder


def _subtree_sums(root: FENode) -> dict:
    """Post-order subtree cost sums keyed by ``id(node)``."""
    sums: dict = {}
    stack: List[Tuple[FENode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            total = node.cost
            for c in node.children:
                total += sums[id(c)]
            sums[id(node)] = total
        else:
            stack.append((node, True))
            for c in node.children:
                stack.append((c, False))
    return sums


def _rebuild_without(path: List[Tuple[FENode, bool]]) -> FENode:
    """Rebuild the ancestor chain of ``removed`` with that child pruned.

    Only the ``len(path)`` ancestors are re-created; every other subtree is
    shared with the original (immutable) tree.
    """
    parent, went_left = path[-1]
    if went_left:
        rebuilt = FENode(parent.cost, left=None, right=parent.right)
    else:
        rebuilt = FENode(parent.cost, left=parent.left, right=None)
    for ancestor, was_left in reversed(path[:-1]):
        if was_left:
            rebuilt = FENode(ancestor.cost, left=rebuilt, right=ancestor.right)
        else:
            rebuilt = FENode(ancestor.cost, left=ancestor.left, right=rebuilt)
    return rebuilt


def random_fe_tree(
    n_nodes: int,
    *,
    seed: int = 0,
    skew: float = 0.7,
    cost_spread: float = 4.0,
) -> FETreeProblem:
    """Generate a synthetic unbalanced FE-tree with ``n_nodes`` nodes.

    ``skew ∈ [0.5, 1)`` controls shape: each insertion descends left with
    probability ``skew`` (0.5 = random balanced-ish, →1 = degenerate path,
    mimicking adaptive refinement concentrating in one region).
    ``cost_spread ≥ 1`` controls node-cost variability (log-uniform in
    ``[1, cost_spread]``).
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if not (0.5 <= skew < 1.0):
        raise ValueError(f"skew must be in [0.5, 1), got {skew}")
    if cost_spread < 1.0:
        raise ValueError(f"cost_spread must be >= 1, got {cost_spread}")
    rng = np.random.default_rng(seed)
    costs = np.exp(rng.uniform(0.0, np.log(cost_spread), size=n_nodes))

    # Build mutable skeleton first (dict-based), then freeze bottom-up.
    children: List[List[int]] = [[-1, -1]]
    for i in range(1, n_nodes):
        # descend from the root until a free slot is found
        cur = 0
        while True:
            go_left = bool(rng.random() < skew)
            slot = 0 if go_left else 1
            if children[cur][slot] == -1:
                children[cur][slot] = i
                children.append([-1, -1])
                break
            cur = children[cur][slot]

    # Freeze iteratively to dodge recursion limits on skewed trees.
    order: List[int] = []
    stack = [0]
    while stack:
        idx = stack.pop()
        order.append(idx)
        for c in children[idx]:
            if c != -1:
                stack.append(c)
    frozen: dict = {}
    for idx in reversed(order):
        li, ri = children[idx]
        frozen[idx] = FENode(
            float(costs[idx]),
            left=frozen[li] if li != -1 else None,
            right=frozen[ri] if ri != -1 else None,
        )
    return FETreeProblem(frozen[0])
