"""Tests for the benchmark-artifact comparison tool (tools/bench_compare.py).

Covers the metric walker, the regression gate, the cross-machine /
schema-version compatibility warnings, and the CLI exit codes -- the
pieces ``tools/check.sh`` relies on for its standing perf gate.
"""

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import bench_compare  # noqa: E402


def artifact(rate, *, schema=1, machine=None, group="entries"):
    payload = {
        "schema_version": schema,
        group: {"hot_path": {"trials_per_s": rate, "n_trials": 100}},
    }
    if machine is not None:
        payload["machine"] = machine
    return payload


MACHINE = {
    "cpu_model": "TestCPU 9000",
    "machine": "x86_64",
    "cpu_count": 1,
    "python": "3.11.7",
    "numpy": "2.4.6",
}


class TestIterMetrics:
    def test_walks_all_group_keys(self):
        payload = {
            "kernels": {"hf": {"speedup": 2.0}},
            "algorithms": {"ba": {"rate": 3}},
            "entries": {"e": {"x": 1.5}},
        }
        got = set(bench_compare.iter_metrics(payload))
        assert got == {("hf", "speedup", 2.0), ("ba", "rate", 3.0), ("e", "x", 1.5)}

    def test_skips_bools_and_non_numeric(self):
        payload = {
            "entries": {"e": {"ok": True, "label": "x", "rate": 1.0}}
        }
        got = list(bench_compare.iter_metrics(payload))
        assert got == [("e", "rate", 1.0)]

    def test_ignores_scalar_top_level_keys(self):
        assert list(bench_compare.iter_metrics({"n_trials": 5})) == []


class TestCompare:
    def test_identical_artifacts_pass(self):
        a = artifact(100.0)
        _, regressions, warnings = bench_compare.compare_artifacts(
            a, a, metrics=["trials_per_s"], threshold_pct=25.0
        )
        assert regressions == []
        assert warnings == []

    def test_drop_beyond_threshold_regresses(self):
        _, regressions, _ = bench_compare.compare_artifacts(
            artifact(100.0), artifact(60.0),
            metrics=["trials_per_s"], threshold_pct=25.0,
        )
        assert len(regressions) == 1
        assert "trials_per_s" in regressions[0]

    def test_drop_within_threshold_passes(self):
        _, regressions, _ = bench_compare.compare_artifacts(
            artifact(100.0), artifact(80.0),
            metrics=["trials_per_s"], threshold_pct=25.0,
        )
        assert regressions == []

    def test_improvement_never_regresses(self):
        _, regressions, _ = bench_compare.compare_artifacts(
            artifact(100.0), artifact(500.0),
            metrics=["trials_per_s"], threshold_pct=25.0,
        )
        assert regressions == []

    def test_gated_metric_missing_from_candidate_regresses(self):
        candidate = {"schema_version": 1, "entries": {"hot_path": {"n_trials": 100}}}
        _, regressions, warnings = bench_compare.compare_artifacts(
            artifact(100.0), candidate,
            metrics=["trials_per_s"], threshold_pct=25.0,
        )
        assert regressions
        assert any("missing from candidate" in w for w in warnings)

    def test_ungated_metric_only_warns(self):
        base = artifact(100.0)
        cand = artifact(100.0)
        cand["entries"]["hot_path"]["extra"] = 1.0
        _, regressions, warnings = bench_compare.compare_artifacts(
            base, cand, metrics=["trials_per_s"], threshold_pct=25.0
        )
        assert regressions == []
        assert any("missing from baseline" in w for w in warnings)


class TestCompatibilityWarnings:
    def test_same_machine_and_schema_quiet(self):
        a = artifact(1.0, machine=dict(MACHINE))
        assert bench_compare.compatibility_warnings(a, a) == []

    def test_cross_machine_warns_per_differing_field(self):
        other = dict(MACHINE, cpu_model="OtherCPU", cpu_count=64)
        warns = bench_compare.compatibility_warnings(
            artifact(1.0, machine=MACHINE), artifact(1.0, machine=other)
        )
        assert len(warns) == 2
        assert all("cross-machine" in w for w in warns)

    def test_schema_version_mismatch_warns(self):
        warns = bench_compare.compatibility_warnings(
            artifact(1.0, schema=1, machine=MACHINE),
            artifact(1.0, schema=2, machine=MACHINE),
        )
        assert any("schema_version" in w for w in warns)

    def test_missing_machine_block_warns(self):
        warns = bench_compare.compatibility_warnings(
            artifact(1.0, machine=MACHINE), artifact(1.0)
        )
        assert any("machine metadata missing" in w for w in warns)

    def test_both_missing_machine_blocks_quiet(self):
        assert bench_compare.compatibility_warnings(
            artifact(1.0), artifact(1.0)
        ) == []


class TestMain:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_self_compare_exits_zero(self, tmp_path, capsys):
        path = self.write(tmp_path, "a.json", artifact(100.0, machine=MACHINE))
        assert bench_compare.main([path, path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        base = self.write(tmp_path, "a.json", artifact(100.0, machine=MACHINE))
        cand = self.write(tmp_path, "b.json", artifact(10.0, machine=MACHINE))
        assert bench_compare.main([base, cand, "--threshold", "25"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_cross_machine_warning_reaches_stderr(self, tmp_path, capsys):
        other = dict(MACHINE, cpu_model="OtherCPU")
        base = self.write(tmp_path, "a.json", artifact(100.0, machine=MACHINE))
        cand = self.write(tmp_path, "b.json", artifact(100.0, machine=other))
        assert bench_compare.main([base, cand]) == 0
        assert "cross-machine" in capsys.readouterr().err

    def test_negative_threshold_exits_two(self, tmp_path):
        path = self.write(tmp_path, "a.json", artifact(1.0))
        assert bench_compare.main([path, path, "--threshold", "-3"]) == 2

    def test_committed_artifacts_parse(self):
        results = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
        for path in sorted(results.glob("BENCH_*.json")):
            payload = bench_compare.load_artifact(str(path))
            assert list(bench_compare.iter_metrics(payload)), path.name


def serve_artifact(p50=10.0, p99=20.0, shed=0.0, rps=1000.0, machine=None):
    payload = {
        "schema_version": 1,
        "entries": {
            "serve": {
                "p50_ms": p50,
                "p99_ms": p99,
                "shed_rate": shed,
                "throughput_rps": rps,
            }
        },
    }
    if machine is not None:
        payload["machine"] = machine
    return payload


class TestLowerMetrics:
    """Lower-is-better gating for the BENCH_serve.json latency group."""

    def compare(self, base, cand, threshold=25.0):
        return bench_compare.compare_artifacts(
            base, cand,
            metrics=["throughput_rps"],
            lower_metrics=["p50_ms", "p99_ms", "shed_rate"],
            threshold_pct=threshold,
        )

    def test_identical_passes(self):
        a = serve_artifact()
        _, regressions, _ = self.compare(a, a)
        assert regressions == []

    def test_latency_rise_beyond_threshold_regresses(self):
        _, regressions, _ = self.compare(
            serve_artifact(p99=20.0), serve_artifact(p99=30.0)
        )
        assert len(regressions) == 1
        assert "p99_ms" in regressions[0]
        assert "lower is better" in regressions[0]

    def test_latency_rise_within_threshold_passes(self):
        _, regressions, _ = self.compare(
            serve_artifact(p99=20.0), serve_artifact(p99=23.0)
        )
        assert regressions == []

    def test_latency_drop_never_regresses(self):
        _, regressions, _ = self.compare(
            serve_artifact(p50=10.0, p99=20.0), serve_artifact(p50=1.0, p99=2.0)
        )
        assert regressions == []

    def test_zero_baseline_rise_always_regresses(self):
        # shed_rate going 0 -> anything has no relative change; it must
        # still gate (a service that starts shedding regressed)
        _, regressions, _ = self.compare(
            serve_artifact(shed=0.0), serve_artifact(shed=0.01)
        )
        assert len(regressions) == 1
        assert "zero baseline" in regressions[0]

    def test_zero_baseline_staying_zero_passes(self):
        _, regressions, _ = self.compare(
            serve_artifact(shed=0.0), serve_artifact(shed=0.0)
        )
        assert regressions == []

    def test_throughput_drop_still_gated_alongside(self):
        _, regressions, _ = self.compare(
            serve_artifact(rps=1000.0), serve_artifact(rps=500.0)
        )
        assert len(regressions) == 1
        assert "throughput_rps" in regressions[0]

    def test_metric_gated_both_directions_rejected(self):
        a = serve_artifact()
        with pytest.raises(ValueError, match="both directions"):
            bench_compare.compare_artifacts(
                a, a,
                metrics=["p99_ms"],
                lower_metrics=["p99_ms"],
                threshold_pct=25.0,
            )

    def test_default_lower_metrics_cover_the_serve_artifact(self):
        assert set(bench_compare.DEFAULT_LOWER_METRICS) == {
            "p50_ms", "p99_ms", "shed_rate"
        }
        assert "throughput_rps" in bench_compare.DEFAULT_METRICS


class TestLowerMetricsMain:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_main_gates_latency_by_default(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "a.json", serve_artifact(p99=20.0, machine=MACHINE)
        )
        cand = self.write(
            tmp_path, "b.json", serve_artifact(p99=40.0, machine=MACHINE)
        )
        assert bench_compare.main([base, cand, "--threshold", "25"]) == 1
        err = capsys.readouterr().err
        assert "p99_ms" in err

    def test_main_lower_metrics_flag_overrides(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "a.json", serve_artifact(p99=20.0, machine=MACHINE)
        )
        cand = self.write(
            tmp_path, "b.json", serve_artifact(p99=40.0, machine=MACHINE)
        )
        # gating only p50_ms leaves the p99 rise as an ungated FYI line
        assert bench_compare.main(
            [base, cand, "--threshold", "25", "--lower-metrics", "p50_ms"]
        ) == 0

    def test_committed_serve_artifact_self_compares_clean(self, capsys):
        results = Path(__file__).resolve().parent.parent / "benchmarks" / "results"
        path = results / "BENCH_serve.json"
        assert path.is_file(), "BENCH_serve.json must be committed"
        assert bench_compare.main([str(path), str(path)]) == 0
