"""Recursive substructuring (nested dissection) over a grid discretisation.

This is the piece of the paper's motivating FEM solver that *produces*
FE-trees: the domain is recursively cut by separators; interior unknowns
of each substructure are eliminated bottom-up; the separator unknowns of
a node are eliminated once both children are done (Schur complement).
The elimination tree -- each node weighted by its elimination flops --
is exactly the "FE-tree" the paper's load balancer must distribute.

Cost model (standard dense-separator accounting):

* internal node with separator of ``s`` unknowns: ``s³`` flops for the
  Schur elimination plus ``c·s²`` update overhead,
* leaf subdomain with ``n`` unknowns and bandwidth ``b`` (its narrow grid
  dimension): ``n·b²`` flops for the banded factorisation.

Separator eliminations are *panelised* (``panel_size`` unknowns per
block column, as dense factorisation kernels do): a separator appears in
the FE-tree as a chain of panel nodes rather than one atomic lump.
Without this, the root separator of a large grid is a single indivisible
task several times the ideal per-processor load and no balancer could
help -- panelisation is precisely what makes the class have useful
α-bisectors.

Adaptivity: an optional per-cell work *density* (e.g. a refinement map
with hot spots) steers both where separators land (weighted median) and
where recursion stops (leaf work budget), producing the unbalanced trees
adaptive refinement creates in practice.

The output is a :class:`repro.problems.fe_tree.FETreeProblem`, so every
algorithm and analysis tool in the library applies directly;
:func:`estimate_parallel_solve` turns a partition of the tree into a
speedup estimate that respects the elimination order's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.partition import Partition
from repro.problems.fe_tree import FENode, FETreeProblem

__all__ = [
    "dissection_tree",
    "dissection_fe_tree",
    "critical_path_cost",
    "ParallelSolveEstimate",
    "estimate_parallel_solve",
]


def dissection_tree(
    nx: int,
    ny: int,
    *,
    density: Optional[np.ndarray] = None,
    leaf_cells: int = 64,
    leaf_work: Optional[float] = None,
    update_overhead: float = 8.0,
    panel_size: int = 8,
) -> FENode:
    """Nested-dissection elimination tree for an ``ny × nx`` interior grid.

    ``density`` (shape ``(ny, nx)``, positive) models local refinement:
    separator positions follow the weighted median and ``leaf_work``
    bounds the *weighted* work per leaf.  Without a density the dissection
    is the classic balanced one.
    """
    if nx < 1 or ny < 1:
        raise ValueError(f"grid must be at least 1x1, got {nx}x{ny}")
    if leaf_cells < 1:
        raise ValueError(f"leaf_cells must be >= 1, got {leaf_cells}")
    if panel_size < 1:
        raise ValueError(f"panel_size must be >= 1, got {panel_size}")
    if density is not None:
        density = np.asarray(density, dtype=np.float64)
        if density.shape != (ny, nx):
            raise ValueError(
                f"density shape {density.shape} != grid shape {(ny, nx)}"
            )
        if np.any(density <= 0):
            raise ValueError("density must be strictly positive")
    if leaf_work is None and density is not None:
        leaf_work = float(density.sum()) / 64.0

    def region_work(r0: int, r1: int, c0: int, c1: int) -> float:
        if density is None:
            return float((r1 - r0) * (c1 - c0))
        return float(density[r0:r1, c0:c1].sum())

    def build(r0: int, r1: int, c0: int, c1: int) -> FENode:
        rows, cols = r1 - r0, c1 - c0
        cells = rows * cols
        stop = cells <= leaf_cells or min(rows, cols) < 3
        if not stop and leaf_work is not None:
            stop = region_work(r0, r1, c0, c1) <= leaf_work
        if stop:
            n = cells
            bandwidth = min(rows, cols)
            cost = max(1.0, float(n) * bandwidth**2)
            return FENode(cost)

        split_rows = rows >= cols
        if split_rows:
            k = _weighted_median_row(density, r0, r1, c0, c1)
            left = build(r0, k, c0, c1)
            right = build(k + 1, r1, c0, c1)
            separator = cols
        else:
            k = _weighted_median_col(density, r0, r1, c0, c1)
            left = build(r0, r1, c0, k)
            right = build(r0, r1, k + 1, c1)
            separator = rows
        cost = float(separator**3 + update_overhead * separator**2)
        return _panel_chain(cost, separator, panel_size, left, right)

    return build(0, ny, 0, nx)


def _panel_chain(
    total_cost: float,
    separator: int,
    panel_size: int,
    left: FENode,
    right: FENode,
) -> FENode:
    """Represent a separator elimination as a chain of panel tasks.

    The bottom panel joins the two substructure children; each further
    panel stacks on top.  Total cost is conserved exactly.
    """
    n_panels = max(1, -(-separator // panel_size))
    per_panel = total_cost / n_panels
    node = FENode(per_panel, left=left, right=right)
    for _ in range(n_panels - 1):
        node = FENode(per_panel, left=node)
    return node


def _weighted_median_row(
    density: Optional[np.ndarray], r0: int, r1: int, c0: int, c1: int
) -> int:
    """Separator row index k (the row k itself is the separator)."""
    lo, hi = r0 + 1, r1 - 2  # both halves non-empty
    if hi < lo:
        return (r0 + r1) // 2
    if density is None:
        return (r0 + r1) // 2
    sums = density[r0:r1, c0:c1].sum(axis=1)
    cum = np.cumsum(sums)
    target = cum[-1] / 2.0
    k = r0 + int(np.searchsorted(cum, target))
    return int(np.clip(k, lo, hi))


def _weighted_median_col(
    density: Optional[np.ndarray], r0: int, r1: int, c0: int, c1: int
) -> int:
    lo, hi = c0 + 1, c1 - 2
    if hi < lo:
        return (c0 + c1) // 2
    if density is None:
        return (c0 + c1) // 2
    sums = density[r0:r1, c0:c1].sum(axis=0)
    cum = np.cumsum(sums)
    target = cum[-1] / 2.0
    k = c0 + int(np.searchsorted(cum, target))
    return int(np.clip(k, lo, hi))


def dissection_fe_tree(
    nx: int,
    ny: int,
    *,
    density: Optional[np.ndarray] = None,
    leaf_cells: int = 64,
    leaf_work: Optional[float] = None,
) -> FETreeProblem:
    """The elimination tree wrapped as a bisectable FE-tree problem."""
    return FETreeProblem(
        dissection_tree(
            nx, ny, density=density, leaf_cells=leaf_cells, leaf_work=leaf_work
        )
    )


def critical_path_cost(root: FENode) -> float:
    """Elimination-order critical path: ``cost(v) + max over children``.

    No schedule can finish faster than this, regardless of processor
    count: a separator cannot be eliminated before its children.
    """
    # iterative post-order
    depth_cost: Dict[int, float] = {}
    stack: List[Tuple[FENode, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            child_max = max(
                (depth_cost[id(c)] for c in node.children), default=0.0
            )
            depth_cost[id(node)] = node.cost + child_max
        else:
            stack.append((node, True))
            for c in node.children:
                stack.append((c, False))
    return depth_cost[id(root)]


@dataclass(frozen=True)
class ParallelSolveEstimate:
    """Estimated parallel elimination performance for one partition."""

    n_processors: int
    serial_flops: float
    #: heaviest per-processor flop load (the balancer's objective)
    max_processor_flops: float
    #: lower bound from the elimination dependency chain
    critical_path_flops: float

    @property
    def parallel_flops(self) -> float:
        """Makespan estimate: dependencies or load, whichever binds."""
        return max(self.max_processor_flops, self.critical_path_flops)

    @property
    def speedup(self) -> float:
        return self.serial_flops / self.parallel_flops

    @property
    def efficiency(self) -> float:
        return self.speedup / self.n_processors


def estimate_parallel_solve(
    tree: FETreeProblem,
    partition: Partition,
) -> ParallelSolveEstimate:
    """Estimate the parallel elimination time under a tree partition.

    Each processor eliminates the nodes of its assigned subtree(s); the
    makespan is bounded below by both the heaviest processor and the
    critical path of the full elimination tree.
    """
    serial = tree.weight
    loads = partition.weights
    return ParallelSolveEstimate(
        n_processors=partition.n_processors,
        serial_flops=serial,
        max_processor_flops=max(loads),
        critical_path_flops=critical_path_cost(tree.root),
    )
