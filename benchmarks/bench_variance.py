"""Bench E2 -- the sample-variance observations of Section 4.

Paper: "the sample variance was very small in all cases except if an
interval [a, 2a] with very small a was chosen"; "especially for HF the
observed ratios were sharply concentrated around the sample mean for
larger values of N".
"""

import pytest

from repro.experiments.variance_study import (
    NARROW_INTERVAL,
    render_variance_study,
    run_variance_study,
)

from _common import run_once, small_grid, write_artifact


def test_variance_study_reproduction(benchmark):
    n_values, n_trials = small_grid()
    result = run_once(
        benchmark,
        lambda: run_variance_study(
            intervals=[(0.01, 0.5), (0.1, 0.5), (0.25, 0.5)],
            include_narrow=True,
            n_trials=n_trials,
            n_values=n_values,
        ),
    )
    write_artifact("variance_study", render_variance_study(result))

    # wide intervals: small absolute variance
    for interval in [(0.01, 0.5), (0.1, 0.5), (0.25, 0.5)]:
        assert result.max_variance(interval) < 0.5

    # the narrow small-a interval is the exception
    widest = max(
        result.max_variance(iv) for iv in [(0.01, 0.5), (0.1, 0.5), (0.25, 0.5)]
    )
    assert result.max_variance(NARROW_INTERVAL) > widest

    # HF concentrates as N grows
    sweep = result.sweeps[(0.1, 0.5)]
    n_lo, n_hi = min(n_values), max(n_values)
    assert sweep.get("hf", n_hi).sample.std < sweep.get("hf", n_lo).sample.std

    benchmark.extra_info["narrow_max_var"] = round(
        result.max_variance(NARROW_INTERVAL), 4
    )
    benchmark.extra_info["wide_max_var"] = round(widest, 4)
