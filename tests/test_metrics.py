"""Unit tests for load-balance metrics."""

import numpy as np
import pytest

from repro.core.metrics import (
    idle_fraction,
    imbalance,
    normalized_std,
    ratio,
    summarize_ratios,
)


class TestRatio:
    def test_perfect_balance(self):
        assert ratio([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_known_value(self):
        # max 3, mean 2 -> ratio 1.5
        assert ratio([1.0, 2.0, 3.0, 2.0]) == pytest.approx(1.5)

    def test_with_idle_processors(self):
        # 2 pieces of 0.5 on 4 processors: ideal 0.25 -> ratio 2
        assert ratio([0.5, 0.5], n_processors=4) == pytest.approx(2.0)

    def test_single_piece(self):
        assert ratio([7.0]) == pytest.approx(1.0)

    def test_ratio_never_below_one(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            w = rng.uniform(0.1, 5.0, size=rng.integers(1, 30))
            assert ratio(w) >= 1.0 - 1e-12

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ratio([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ratio([])

    def test_rejects_more_pieces_than_processors(self):
        with pytest.raises(ValueError):
            ratio([1.0, 1.0, 1.0], n_processors=2)


class TestOtherMetrics:
    def test_imbalance_is_ratio_minus_one(self):
        w = [1.0, 2.0, 3.0]
        assert imbalance(w) == pytest.approx(ratio(w) - 1.0)

    def test_normalized_std_zero_for_uniform(self):
        assert normalized_std([2.0, 2.0, 2.0]) == pytest.approx(0.0)

    def test_normalized_std_known(self):
        # weights 1,3: mean 2, population std 1 -> CV 0.5
        assert normalized_std([1.0, 3.0]) == pytest.approx(0.5)

    def test_idle_fraction(self):
        assert idle_fraction([1.0, 1.0], 4) == pytest.approx(0.5)
        assert idle_fraction([1.0, 1.0], 2) == 0.0

    def test_idle_fraction_rejects_overfull(self):
        with pytest.raises(ValueError):
            idle_fraction([1.0, 1.0, 1.0], 2)


class TestSummarizeRatios:
    def test_basic_stats(self):
        s = summarize_ratios([1.0, 2.0, 3.0])
        assert s.n_trials == 3
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.mean == pytest.approx(2.0)
        assert s.variance == pytest.approx(1.0)  # ddof=1
        assert s.std == pytest.approx(1.0)

    def test_single_trial_zero_variance(self):
        s = summarize_ratios([1.5])
        assert s.variance == 0.0
        assert s.std == 0.0

    def test_matches_numpy(self):
        rng = np.random.default_rng(1)
        data = 1.0 + rng.random(200)
        s = summarize_ratios(data)
        assert s.mean == pytest.approx(float(np.mean(data)))
        assert s.variance == pytest.approx(float(np.var(data, ddof=1)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_ratios([])

    def test_rejects_subunit_ratios(self):
        with pytest.raises(ValueError, match="impossible"):
            summarize_ratios([0.5, 1.2])

    def test_as_dict_keys(self):
        d = summarize_ratios([1.0, 2.0]).as_dict()
        assert set(d) == {"n_trials", "min", "avg", "max", "var", "std"}
