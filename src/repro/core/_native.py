"""Optional C fast paths for the batched kernels and the PHF fastpath.

The lockstep NumPy kernels in :mod:`repro.core.batch` and
:mod:`repro.simulator.fastpath` are exact but memory-bound: every
bisection pays a few fancy-indexed gathers across the whole batch, which
caps them near the scalar loops at large N.  The per-trial loops are a
few hundred lines of C, so this module compiles :file:`_kernels.c` on
demand with whatever system compiler is available (``cc``/``gcc``/
``clang``) and loads it through :mod:`ctypes` -- no build step, no new
Python dependency.  It exposes four kernels:

* :func:`hf_batch_native`   -- HF final weights (hold-back 8-ary heap)
* :func:`ba_batch_native`   -- BA final weights (explicit DFS stack)
* :func:`bahf_batch_native` -- BA-HF final weights (BA above the
  switch-over threshold, HF below it)
* :func:`phf_metrics_native` -- PHF machine metrics for the central
  phase-1 / complete-network fastpath

Everything here degrades gracefully: if there is no compiler, the build
fails, or ``REPRO_NO_NATIVE`` is set in the environment, callers get
``None``/``False`` and fall back to the pure-NumPy kernels.  The shared
object is cached under the system temp directory, keyed by a hash of the
source text, *the compiler version* and the threading mode, so it
compiles once per machine and toolchain, not once per process; one-line
logs record whether the compile was skipped (cache hit), performed, or
failed, and which threading mode was chosen.

Threading: at build time the compiler is probed once (and the result
memoized) for ``-pthread`` and ``-fopenmp`` support; the first mode that
links is compiled in (pthread preferred -- its per-call spawn-and-join
has no persistent state and is therefore fork-safe under the process
pool, unlike OpenMP's cached thread teams) and the kernels shard their
trial range into contiguous blocks, one per thread.  Blocks write
disjoint output rows, so results are bit-identical for every thread
count.  ``REPRO_NATIVE_THREAD_MODE`` forces a mode (``pthread`` /
``openmp`` / ``serial``); ``REPRO_NATIVE_THREADS`` sets the default
thread count (``auto``/``0``/unset means :func:`os.cpu_count`), and
every wrapper takes an explicit ``n_threads`` override.
"""

from __future__ import annotations

import ctypes
import hashlib
import logging
import os
import shutil
import subprocess
import sys
import tempfile
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.problem import check_alpha

__all__ = [
    "ba_batch_native",
    "bahf_batch_native",
    "hf_batch_native",
    "native_available",
    "native_threading_mode",
    "phf_metrics_native",
    "resolve_n_threads",
]

_SOURCE_PATH = os.path.join(os.path.dirname(__file__), "_kernels.c")
_LIB_BASENAME = "libreprokernels.so"

_logger = logging.getLogger(__name__)

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_load_attempted = False

_compiler_version_cache: Dict[str, str] = {}

# Threading modes in probe-preference order, and the extra compile flags
# each one needs.  pthread before OpenMP: both scale identically here,
# but libgomp keeps its thread team alive between calls, which does not
# survive fork() into ProcessPoolExecutor workers; the pthread path
# spawns and joins per call and is fork-safe by construction.
_THREAD_MODE_FLAGS: Dict[str, Tuple[str, ...]] = {
    "pthread": ("-pthread", "-DREPRO_THREADS_PTHREAD"),
    "openmp": ("-fopenmp", "-DREPRO_THREADS_OPENMP"),
    "serial": (),
}
_THREAD_BACKEND_NAMES = {0: "serial", 1: "pthread", 2: "openmp"}

_thread_probe_cache: Dict[Tuple[str, str], bool] = {}
_thread_mode_cache: Dict[str, str] = {}

# Minimal translation units used to probe whether a threading flag both
# compiles and links on this toolchain.
_PROBE_SOURCES = {
    "pthread": (
        "#include <pthread.h>\n"
        "static void *probe_main(void *arg) { return arg; }\n"
        "int probe(void) { pthread_t t;\n"
        "    if (pthread_create(&t, 0, probe_main, 0)) return 1;\n"
        "    return pthread_join(t, 0); }\n"
    ),
    "openmp": (
        "#include <omp.h>\n"
        "int probe(void) { int s = 0; int i;\n"
        "#pragma omp parallel for reduction(+:s)\n"
        "    for (i = 0; i < 4; ++i) s += i;\n"
        "    return s; }\n"
    ),
}


def _disabled() -> bool:
    return os.environ.get("REPRO_NO_NATIVE", "") not in ("", "0", "false", "no")


def _find_compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compiler_version(compiler: str) -> str:
    """First line of ``<compiler> --version`` (memoized, '' on failure)."""
    cached = _compiler_version_cache.get(compiler)
    if cached is not None:
        return cached
    try:
        proc = subprocess.run(
            [compiler, "--version"],
            capture_output=True,
            timeout=30,
            check=False,
        )
        version = proc.stdout.decode("utf-8", "replace").splitlines()[0]
    except Exception:
        version = ""
    # Memoization of an immutable toolchain fact; per-process and
    # value-deterministic, so pool payloads reaching this stay pure.
    _compiler_version_cache[compiler] = version  # repro-lint: disable=R104
    return version


def _probe_thread_flag(compiler: str, mode: str) -> bool:
    """True when ``mode``'s flag compiles AND links (memoized)."""
    key = (compiler, mode)
    cached = _thread_probe_cache.get(key)
    if cached is not None:
        return cached
    flags = _THREAD_MODE_FLAGS[mode]
    ok = False
    tmp_dir = tempfile.mkdtemp(prefix="repro-thread-probe-")
    try:
        src_path = os.path.join(tmp_dir, "probe.c")
        with open(src_path, "w", encoding="utf-8") as fh:
            fh.write(_PROBE_SOURCES[mode])
        proc = subprocess.run(
            [compiler, *flags, "-shared", "-fPIC", "-o",
             os.path.join(tmp_dir, "probe.so"), src_path],
            capture_output=True,
            timeout=60,
            check=False,
        )
        ok = proc.returncode == 0
    except Exception:
        ok = False
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    # Memoized toolchain fact, same rationale as _compiler_version.
    _thread_probe_cache[key] = ok  # repro-lint: disable=R104
    return ok


def _threading_mode(compiler: str) -> str:
    """Pick the threading mode to compile in (memoized per compiler).

    ``REPRO_NATIVE_THREAD_MODE`` forces a mode (still probed, falling
    back to serial when the flag does not link); otherwise the first of
    pthread, openmp that probes clean wins, else serial.  Logs the
    chosen mode once.
    """
    cached = _thread_mode_cache.get(compiler)
    if cached is not None:
        return cached
    forced = os.environ.get("REPRO_NATIVE_THREAD_MODE", "").strip().lower()
    if forced and forced not in _THREAD_MODE_FLAGS:
        _logger.warning(
            "ignoring unknown REPRO_NATIVE_THREAD_MODE=%r "
            "(expected pthread/openmp/serial)", forced
        )
        forced = ""
    candidates = (forced,) if forced else ("pthread", "openmp")
    mode = "serial"
    for candidate in candidates:
        if candidate == "serial" or _probe_thread_flag(compiler, candidate):
            mode = candidate
            break
    flags = " ".join(_THREAD_MODE_FLAGS[mode]) or "none"
    _logger.info("native kernels threading mode: %s (flags: %s)", mode, flags)
    # Memoized toolchain fact, same rationale as _compiler_version.
    _thread_mode_cache[compiler] = mode  # repro-lint: disable=R104
    return mode


def _cache_dir(source: bytes, compiler_version: str, thread_mode: str) -> str:
    uid = getattr(os, "getuid", lambda: 0)()
    digest = hashlib.sha256(
        source
        + sys.platform.encode()
        + compiler_version.encode()
        + thread_mode.encode()
    ).hexdigest()[:16]
    return os.path.join(tempfile.gettempdir(), f"repro-kernels-{uid}-{digest}")


_DOUBLE_P = ctypes.POINTER(ctypes.c_double)
_LONG_P = ctypes.POINTER(ctypes.c_long)


def _declare(lib: ctypes.CDLL) -> None:
    lib.repro_threading_backend.restype = ctypes.c_int
    lib.repro_threading_backend.argtypes = []
    lib.repro_hf_batch.restype = None
    lib.repro_hf_batch.argtypes = [
        _DOUBLE_P,  # draws
        ctypes.c_long,  # draws row stride (elements)
        _DOUBLE_P,  # w0
        _DOUBLE_P,  # out
        ctypes.c_long,  # n_trials
        ctypes.c_long,  # n
        ctypes.c_long,  # n_threads
    ]
    lib.repro_ba_batch.restype = ctypes.c_int
    lib.repro_ba_batch.argtypes = [
        _DOUBLE_P,
        ctypes.c_long,
        _DOUBLE_P,
        _DOUBLE_P,
        ctypes.c_long,
        ctypes.c_long,
        ctypes.c_long,  # n_threads
    ]
    lib.repro_bahf_batch.restype = ctypes.c_int
    lib.repro_bahf_batch.argtypes = [
        _DOUBLE_P,
        ctypes.c_long,
        _DOUBLE_P,
        _DOUBLE_P,
        ctypes.c_long,
        ctypes.c_long,
        ctypes.c_double,  # threshold
        ctypes.c_long,  # n_threads
    ]
    lib.repro_phf_metrics.restype = ctypes.c_int
    lib.repro_phf_metrics.argtypes = [
        _DOUBLE_P,  # draws
        ctypes.c_long,  # draws row stride (elements)
        ctypes.c_long,  # n_trials
        ctypes.c_long,  # n
        ctypes.c_double,  # w0
        ctypes.c_double,  # threshold
        ctypes.c_double,  # band_factor (1 - alpha)
        ctypes.c_int,  # keep_heavy
        ctypes.c_double,  # t_bisect
        ctypes.c_double,  # t_acquire
        ctypes.c_double,  # t_send
        ctypes.c_double,  # c (collective cost)
        _DOUBLE_P,  # makespan
        _DOUBLE_P,  # coll_time
        _LONG_P,  # coll_n
        _LONG_P,  # ctrl
        _DOUBLE_P,  # maxw
        _LONG_P,  # status
        ctypes.c_long,  # n_threads
    ]


def _build() -> Optional[ctypes.CDLL]:
    """Compile (if needed), load, and type-check the shared library."""
    with open(_SOURCE_PATH, "rb") as fh:
        source = fh.read()
    compiler = _find_compiler()
    if compiler is None:
        _logger.warning("native kernels disabled: no system C compiler found")
        return None
    thread_mode = _threading_mode(compiler)
    cache_dir = _cache_dir(source, _compiler_version(compiler), thread_mode)
    lib_path = os.path.join(cache_dir, _LIB_BASENAME)
    if os.path.exists(lib_path):
        _logger.debug("native kernel compile skipped: cache hit at %s", lib_path)
    else:
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(suffix=".so", dir=cache_dir)
        os.close(fd)
        try:
            # -O2 with contraction off: -ffast-math or FMA contraction
            # would break bit-exactness vs the scalar path (see the
            # contract in _kernels.c).
            subprocess.run(
                [
                    compiler,
                    "-O2",
                    "-std=c99",
                    "-ffp-contract=off",
                    *_THREAD_MODE_FLAGS[thread_mode],
                    "-shared",
                    "-fPIC",
                    "-o",
                    tmp_path,
                    _SOURCE_PATH,
                    "-lm",
                ],
                check=True,
                capture_output=True,
                timeout=120,
            )
            os.replace(tmp_path, lib_path)
            _logger.info("native kernels compiled with %s -> %s", compiler, lib_path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)
    lib = ctypes.CDLL(lib_path)
    _declare(lib)
    return lib


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _load_attempted
    if _disabled():
        return None
    if _load_attempted:
        return _lib
    # Lazy one-shot library handle: per-process, guarded by _lock, and
    # the loaded code is keyed by a content hash of the C source -- the
    # same task yields bit-identical results whichever process runs it.
    with _lock:
        if not _load_attempted:
            try:
                _lib = _build()  # repro-lint: disable=R104
            except Exception as exc:
                _logger.warning("native kernel compile failed: %s", exc)
                _lib = None  # repro-lint: disable=R104
            _load_attempted = True  # repro-lint: disable=R104
    return _lib


def native_available() -> bool:
    """True when the compiled kernels can be used on this machine."""
    return _load() is not None


def native_threading_mode() -> Optional[str]:
    """Threading mode compiled into the loaded library, or ``None``.

    One of ``"pthread"``, ``"openmp"``, ``"serial"`` (the library
    reports what it was actually built with, not what was requested);
    ``None`` when the native kernels are unavailable.
    """
    lib = _load()
    if lib is None:
        return None
    return _THREAD_BACKEND_NAMES.get(int(lib.repro_threading_backend()))


def resolve_n_threads(n_threads: Optional[int] = None) -> int:
    """Resolve an ``n_threads`` knob to a concrete positive count.

    An explicit integer wins; ``None`` consults ``REPRO_NATIVE_THREADS``
    (a positive integer, or ``auto``/``0``/unset for
    :func:`os.cpu_count`).  The count only affects how trial blocks are
    sharded across threads, never the results -- kernels are
    bit-identical for every value.
    """
    if n_threads is not None:
        value = int(n_threads)
        if value < 1:
            raise ValueError(f"n_threads must be >= 1, got {n_threads!r}")
        return value
    raw = os.environ.get("REPRO_NATIVE_THREADS", "").strip().lower()
    if raw in ("", "auto", "0"):
        return os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        value = -1
    if value < 1:
        raise ValueError(
            "REPRO_NATIVE_THREADS must be a positive integer or 'auto', "
            f"got {raw!r}"
        )
    return value


def _as_c_inputs(
    w0: np.ndarray, draws: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, int, int]:
    draws_c = np.ascontiguousarray(draws, dtype=np.float64)
    w0_c = np.ascontiguousarray(w0, dtype=np.float64)
    stride = draws_c.shape[1] if draws_c.ndim == 2 else 0
    return draws_c, w0_c, w0_c.shape[0], stride


def _dptr(arr: np.ndarray):
    return arr.ctypes.data_as(_DOUBLE_P)


def _lptr(arr: np.ndarray):
    return arr.ctypes.data_as(_LONG_P)


def hf_batch_native(
    w0: np.ndarray, n: int, draws: np.ndarray,
    n_threads: Optional[int] = None,
) -> Optional[np.ndarray]:
    """Run the compiled HF kernel, or return ``None`` if unavailable.

    ``w0`` is the per-trial initial weight vector and ``draws`` the
    ``(n_trials, >= n-1)`` alpha-hat matrix; returns the ``(n_trials, n)``
    final-weight table (same multiset per row as the scalar loop).
    ``n_threads`` shards trials across in-kernel threads (``None`` =
    :func:`resolve_n_threads`); the result is bit-identical for every
    count.
    """
    lib = _load()
    if lib is None:
        return None
    draws_c, w0_c, n_trials, stride = _as_c_inputs(w0, draws)
    out = np.empty((n_trials, n), dtype=np.float64)
    lib.repro_hf_batch(
        _dptr(draws_c),
        ctypes.c_long(stride),
        _dptr(w0_c),
        _dptr(out),
        ctypes.c_long(n_trials),
        ctypes.c_long(n),
        ctypes.c_long(resolve_n_threads(n_threads)),
    )
    return out


def ba_batch_native(
    w0: np.ndarray, n: int, draws: np.ndarray,
    n_threads: Optional[int] = None,
) -> Optional[np.ndarray]:
    """Run the compiled BA kernel, or return ``None`` if unavailable.

    Same calling convention as :func:`hf_batch_native`; row ``t`` of the
    output holds trial ``t``'s leaf weights in DFS pop order (the same
    multiset as the scalar recursion fed by the same draw row).
    """
    lib = _load()
    if lib is None:
        return None
    draws_c, w0_c, n_trials, stride = _as_c_inputs(w0, draws)
    out = np.empty((n_trials, n), dtype=np.float64)
    rc = lib.repro_ba_batch(
        _dptr(draws_c),
        ctypes.c_long(stride),
        _dptr(w0_c),
        _dptr(out),
        ctypes.c_long(n_trials),
        ctypes.c_long(n),
        ctypes.c_long(resolve_n_threads(n_threads)),
    )
    if rc != 0:
        return None
    return out


def bahf_batch_native(
    w0: np.ndarray, n: int, draws: np.ndarray, threshold: float,
    n_threads: Optional[int] = None,
) -> Optional[np.ndarray]:
    """Run the compiled BA-HF kernel, or return ``None`` if unavailable.

    ``threshold`` is :func:`repro.core.bahf.bahf_threshold`; nodes whose
    processor count falls below it finish with the in-kernel HF heap.
    """
    lib = _load()
    if lib is None:
        return None
    draws_c, w0_c, n_trials, stride = _as_c_inputs(w0, draws)
    out = np.empty((n_trials, n), dtype=np.float64)
    rc = lib.repro_bahf_batch(
        _dptr(draws_c),
        ctypes.c_long(stride),
        _dptr(w0_c),
        _dptr(out),
        ctypes.c_long(n_trials),
        ctypes.c_long(n),
        ctypes.c_double(threshold),
        ctypes.c_long(resolve_n_threads(n_threads)),
    )
    if rc != 0:
        return None
    return out


def phf_metrics_native(
    draws: np.ndarray,
    n: int,
    *,
    w0: float,
    threshold: float,
    alpha: float,
    keep_heavy: bool,
    t_bisect: float,
    t_acquire: float,
    t_send: float,
    collective: float,
    n_threads: Optional[int] = None,
) -> Optional[
    Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
]:
    """Run the compiled PHF metrics kernel, or return ``None``.

    Returns ``(makespan, coll_time, coll_n, ctrl, maxw, status)`` arrays,
    one slot per trial.  ``status`` is 0 on success, 1 when phase 1 ran
    out of free processors and 2 when phase 2 failed to converge; the
    caller maps nonzero statuses to :class:`SimulationError` to match the
    NumPy fastpath.
    """
    check_alpha(alpha)
    lib = _load()
    if lib is None:
        return None
    draws_c = np.ascontiguousarray(draws, dtype=np.float64)
    n_trials = draws_c.shape[0]
    stride = draws_c.shape[1] if draws_c.ndim == 2 else 0
    makespan = np.empty(n_trials, dtype=np.float64)
    coll_time = np.empty(n_trials, dtype=np.float64)
    coll_n = np.empty(n_trials, dtype=np.int64)
    ctrl = np.empty(n_trials, dtype=np.int64)
    maxw = np.empty(n_trials, dtype=np.float64)
    status = np.empty(n_trials, dtype=np.int64)
    rc = lib.repro_phf_metrics(
        _dptr(draws_c),
        ctypes.c_long(stride),
        ctypes.c_long(n_trials),
        ctypes.c_long(n),
        ctypes.c_double(w0),
        ctypes.c_double(threshold),
        ctypes.c_double(1.0 - alpha),
        ctypes.c_int(1 if keep_heavy else 0),
        ctypes.c_double(t_bisect),
        ctypes.c_double(t_acquire),
        ctypes.c_double(t_send),
        ctypes.c_double(collective),
        _dptr(makespan),
        _dptr(coll_time),
        _lptr(coll_n),
        _lptr(ctrl),
        _dptr(maxw),
        _lptr(status),
        ctypes.c_long(resolve_n_threads(n_threads)),
    )
    if rc != 0:
        return None
    return makespan, coll_time, coll_n, ctrl, maxw, status
