#!/usr/bin/env python
"""Visualise the algorithms' execution on the simulated machine.

Runs BA and PHF with event recording and renders ASCII Gantt charts --
the paper's running-time story at a glance: BA's communication-free
pipeline of bisect/send pairs versus PHF's alternation of local work and
global collective rounds.

Run:  python examples/machine_trace_gantt.py [N]
"""

import sys

from repro import SyntheticProblem, UniformAlpha
from repro.simulator import MachineConfig, render_gantt, simulate_ba, simulate_phf


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    sampler = UniformAlpha(0.1, 0.5)
    config = MachineConfig(record_events=True)

    ba = simulate_ba(SyntheticProblem(1.0, sampler, seed=31), n, config=config)
    print(
        render_gantt(
            ba.events,
            n,
            width=72,
            title=f"BA on N={n}: makespan {ba.parallel_time:.0f}, "
            f"{ba.n_messages} messages, 0 collectives",
        )
    )
    print()

    phf = simulate_phf(SyntheticProblem(1.0, sampler, seed=31), n, config=config)
    print(
        render_gantt(
            phf.events,
            n,
            width=72,
            title=f"PHF on N={n}: makespan {phf.parallel_time:.0f}, "
            f"{phf.n_messages} messages, {phf.n_collectives} collectives "
            f"(the '=' walls)",
        )
    )
    print(
        "\nSame final partition (Theorem 3), very different execution: BA "
        "finishes in the depth of its bisection tree; PHF trades extra "
        "collective rounds for reproducing HF's provably better balance."
    )


if __name__ == "__main__":
    main()
