"""Bench E7 -- the algorithms on concrete interconnect topologies.

The paper's model abstracts the network away ("at most logarithmic
slowdown" on realistic architectures).  This bench prices sends by hop
distance and collectives by network diameter and asserts the resulting
story: log-diameter networks (hypercube) preserve the O(log N) behaviour,
while high-diameter networks (ring) punish PHF's collective-heavy phase 2
far more than BA's communication-free recursion.
"""

import pytest

from repro.experiments.topology_study import (
    render_topology_study,
    run_topology_study,
)

from _common import full_scale, run_once, write_artifact


def test_topology_study(benchmark):
    n_values = (16, 64, 256, 1024) if full_scale() else (16, 64, 256)
    result = run_once(
        benchmark,
        lambda: run_topology_study(n_values=n_values, n_repeats=3),
    )
    write_artifact("topology_study", render_topology_study(result))

    n = max(n_values)
    # hypercube keeps every parallel algorithm within a modest factor of
    # the idealized complete network (the paper's log-slowdown claim)
    import math

    log_n = math.log2(n)
    for algo in ("ba", "bahf", "phf"):
        assert result.slowdown("hypercube", algo, n) <= log_n

    # the ring hurts PHF more than the hypercube does
    assert result.slowdown("ring", "phf", n) > result.slowdown(
        "hypercube", "phf", n
    )

    # BA stays fastest parallel algorithm on every topology
    for topo in ("complete", "hypercube", "mesh2d", "ring"):
        assert (
            result.get(topo, "ba", n).parallel_time
            <= result.get(topo, "phf", n).parallel_time
        )

    benchmark.extra_info["ring_phf_slowdown"] = round(
        result.slowdown("ring", "phf", n), 2
    )
    benchmark.extra_info["ring_ba_slowdown"] = round(
        result.slowdown("ring", "ba", n), 2
    )
