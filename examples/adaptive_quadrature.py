#!/usr/bin/env python
"""Adaptive quadrature: balancing integration work over processors.

Application [4] of the paper: multi-dimensional adaptive numerical
quadrature.  The integrand has a sharp Gaussian peak, so the work is
concentrated in a small part of the domain; uniform spatial decomposition
would badly imbalance the processors.  Bisection-based balancing splits
boxes by *estimated work* instead.

The example compares HF's work-based partition against a naive uniform
spatial grid on the same processor count.

Run:  python examples/adaptive_quadrature.py [N_PROCESSORS]
"""

import sys

import numpy as np

from repro import run_hf
from repro.problems import QuadratureProblem, peak_integrand


def naive_uniform_ratio(problem: QuadratureProblem, n: int) -> float:
    """Ratio achieved by splitting the box into n equal-volume strips."""
    lo, hi = problem.lower, problem.upper
    axis = int(np.argmax(hi - lo))
    edges = np.linspace(lo[axis], hi[axis], n + 1)
    weights = []
    for k in range(n):
        sub_lo, sub_hi = lo.copy(), hi.copy()
        sub_lo[axis], sub_hi[axis] = edges[k], edges[k + 1]
        piece = QuadratureProblem(
            sub_lo, sub_hi, problem.integrand, samples_per_axis=9
        )
        weights.append(piece.weight)
    total = sum(weights)
    return max(weights) / (total / n)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    integrand = peak_integrand(center=(0.2, 0.7), sharpness=60.0)
    box = QuadratureProblem(
        lower=[0.0, 0.0],
        upper=[1.0, 1.0],
        integrand=integrand,
        samples_per_axis=9,
        min_alpha=0.05,
    )
    print(
        f"2-D integrand with a sharp peak at (0.2, 0.7); estimated total "
        f"work {box.weight:.4f}\n"
    )

    partition = run_hf(box, n, record_tree=True)
    partition.validate()
    print(f"HF work-based partition over N={n} processors:")
    for i, piece in enumerate(partition.pieces, start=1):
        lo, hi = piece.lower, piece.upper
        print(
            f"  P{i:<2} box [{lo[0]:.3f},{hi[0]:.3f}]x[{lo[1]:.3f},{hi[1]:.3f}] "
            f"vol={piece.volume:.4f}  work={piece.weight:.4f}"
        )
    print(f"\nHF ratio:            {partition.ratio:.3f}")
    print(f"uniform-grid ratio:  {naive_uniform_ratio(box, n):.3f}")
    print("(1.0 = perfect balance; the peak makes uniform splitting poor)")


if __name__ == "__main__":
    main()
