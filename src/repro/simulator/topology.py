"""Interconnect topologies for the machine model.

The paper assumes point-to-point sends cost one unit and notes that its
PRAM-style collective assumption "can be simulated on many realistic
architectures with at most logarithmic slowdown", citing hypercube
embeddings (Heun [5], Leighton [11]).  This module makes the architecture
explicit: a topology assigns each ordered processor pair a hop distance,
and the machine charges ``t_send + t_hop · (hops - 1)`` per subproblem
transmission.

This matters for the algorithms' *communication locality*: BA's range
splitting sends to ``P_{i+N1}`` -- nearby in a linear ordering but
potentially far on a ring or mesh -- while PHF's phase-2 sends target
arbitrary free processors.  The topology study (experiments E7) measures
how much each algorithm's makespan degrades on sparse networks.

Processor ids are 1-based, matching the rest of the simulator.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.utils.mathutils import ilog2, is_power_of_two

__all__ = [
    "Topology",
    "CompleteTopology",
    "HypercubeTopology",
    "Mesh2DTopology",
    "RingTopology",
]


class Topology(ABC):
    """Hop-distance metric over processors ``1..n``."""

    def __init__(self, n_processors: int) -> None:
        if n_processors < 1:
            raise ValueError(f"n_processors must be >= 1, got {n_processors}")
        self.n = n_processors

    @abstractmethod
    def distance(self, src: int, dst: int) -> int:
        """Number of hops between two distinct processors (≥ 1)."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Short label for tables."""

    def _check(self, proc: int) -> None:
        if not (1 <= proc <= self.n):
            raise ValueError(f"processor id {proc} out of range 1..{self.n}")

    def diameter(self) -> int:
        """Maximum hop distance over all pairs (O(n^2); small n only)."""
        if self.n == 1:
            return 0
        return max(
            self.distance(a, b)
            for a in range(1, self.n + 1)
            for b in range(1, self.n + 1)
            if a != b
        )

    def distance_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Hop distances for many (src, dst) pairs at once.

        ``src``/``dst`` are broadcastable integer arrays of 1-based ids.
        The base implementation loops over :meth:`distance` (one Python
        call per pair); concrete topologies override it with closed-form
        NumPy expressions so the fastpath kernels never fall back to a
        per-edge loop.  Ids are validated like :meth:`distance`.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        src, dst = np.broadcast_arrays(src, dst)
        self._check_array(src)
        self._check_array(dst)
        out = np.empty(src.shape, dtype=np.int64)
        flat_src, flat_dst = src.ravel(), dst.ravel()
        flat_out = out.ravel()
        for k in range(flat_src.size):
            flat_out[k] = self.distance(int(flat_src[k]), int(flat_dst[k]))
        return out

    def _check_array(self, procs: np.ndarray) -> None:
        if procs.size and (procs.min() < 1 or procs.max() > self.n):
            raise ValueError(f"processor id out of range 1..{self.n}")


class CompleteTopology(Topology):
    """Fully connected network: every send is one hop (the paper's model)."""

    @property
    def name(self) -> str:
        return "complete"

    def distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        return 1

    def distance_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        src, dst = np.broadcast_arrays(src, dst)
        self._check_array(src)
        self._check_array(dst)
        return (src != dst).astype(np.int64)


class HypercubeTopology(Topology):
    """Boolean hypercube: distance = Hamming distance of the binary ids.

    Requires a power-of-two processor count.  Diameter ``log2 N`` -- the
    architecture the paper's references embed bisection trees into.
    """

    def __init__(self, n_processors: int) -> None:
        super().__init__(n_processors)
        if not is_power_of_two(n_processors):
            raise ValueError(
                f"hypercube needs a power-of-two processor count, got {n_processors}"
            )

    @property
    def name(self) -> str:
        return "hypercube"

    def distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        return ((src - 1) ^ (dst - 1)).bit_count()

    def distance_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        src, dst = np.broadcast_arrays(src, dst)
        self._check_array(src)
        self._check_array(dst)
        xor = np.bitwise_xor(src - 1, dst - 1).astype(np.uint64)
        if hasattr(np, "bitwise_count"):  # NumPy >= 2.0
            return np.bitwise_count(xor).astype(np.int64)
        # SWAR popcount fallback (64-bit), for NumPy 1.x
        x = xor.copy()
        x = x - ((x >> np.uint64(1)) & np.uint64(0x5555555555555555))
        x = (x & np.uint64(0x3333333333333333)) + (
            (x >> np.uint64(2)) & np.uint64(0x3333333333333333)
        )
        x = (x + (x >> np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
        return ((x * np.uint64(0x0101010101010101)) >> np.uint64(56)).astype(
            np.int64
        )


class Mesh2DTopology(Topology):
    """2-D mesh (no wraparound), near-square: Manhattan distance.

    Diameter ``Θ(√N)`` -- the cheap-to-build architecture where PHF's
    all-to-all collectives hurt most.
    """

    def __init__(self, n_processors: int) -> None:
        super().__init__(n_processors)
        self.cols = max(1, int(math.isqrt(n_processors)))
        self.rows = -(-n_processors // self.cols)

    @property
    def name(self) -> str:
        return "mesh2d"

    def _coords(self, proc: int):
        idx = proc - 1
        return divmod(idx, self.cols)

    def distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        (r1, c1), (r2, c2) = self._coords(src), self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def distance_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        src, dst = np.broadcast_arrays(src, dst)
        self._check_array(src)
        self._check_array(dst)
        r1, c1 = np.divmod(src - 1, self.cols)
        r2, c2 = np.divmod(dst - 1, self.cols)
        return np.abs(r1 - r2) + np.abs(c1 - c2)


class RingTopology(Topology):
    """Bidirectional ring: min cyclic distance; diameter ``⌊N/2⌋``."""

    @property
    def name(self) -> str:
        return "ring"

    def distance(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        d = abs(src - dst)
        return min(d, self.n - d)

    def distance_array(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        src, dst = np.broadcast_arrays(src, dst)
        self._check_array(src)
        self._check_array(dst)
        d = np.abs(src - dst)
        return np.minimum(d, self.n - d)
