"""A small discrete-event simulation engine.

The paper analyses its parallel algorithms in an abstract message-passing
machine model (Section 3): unit-time bisections, unit-time point-to-point
sends, logarithmic-time global operations.  This engine provides the event
loop those simulated executions run on.

It is a classic calendar-queue DES: events are ``(time, seq, callback)``
triples in a binary heap; ``seq`` makes the order total and FIFO among
simultaneous events, so simulations are perfectly deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

__all__ = ["Simulator", "SimulationError", "ScheduledEvent"]


class SimulationError(RuntimeError):
    """Raised when a simulated execution violates model invariants."""


class ScheduledEvent:
    """Handle for one scheduled callback; ``cancel()`` makes it a no-op.

    Cancellation is what timeout protocols need: the fault-aware
    simulations (:mod:`repro.resilience.sim`) schedule an ack-timeout
    event alongside every hand-off and cancel it when the ack arrives.
    A cancelled event is skipped by the loop without being counted in
    ``events_processed``, so simulations that never cancel behave exactly
    as before.
    """

    __slots__ = ("callback",)

    def __init__(self, callback: Callable[[], None]) -> None:
        self.callback: Optional[Callable[[], None]] = callback

    def cancel(self) -> None:
        """Drop the callback; the event fires as a no-op."""
        self.callback = None

    @property
    def cancelled(self) -> bool:
        return self.callback is None


class Simulator:
    """Deterministic discrete-event loop."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._now = 0.0
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` ``delay`` time units from now (``delay ≥ 0``).

        Returns a :class:`ScheduledEvent` handle that can ``cancel()``
        the callback before it fires.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        event = ScheduledEvent(callback)
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))
        self._seq += 1
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Run ``callback`` at absolute simulation time ``time`` (≥ now).

        Pushes the absolute time directly (no round-trip through a
        relative delay), so the event fires at exactly the requested
        float, and a request in the past reports both the requested time
        and the current clock.  Returns a cancellable handle like
        :meth:`schedule`.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at absolute time {time}: "
                f"it is in the past (now={self._now})"
            )
        event = ScheduledEvent(callback)
        heapq.heappush(self._queue, (time, self._seq, event))
        self._seq += 1
        return event

    def run(self, *, max_events: int = 10_000_000) -> float:
        """Process events until the queue drains; returns the final time.

        ``max_events`` is a runaway guard (a simulation that schedules
        itself forever raises instead of hanging the host).
        """
        # The event loop is the hottest path of every DES run; heap ops
        # and instance attributes are hoisted to locals, and the counter
        # runs in a local that is written back once per batch drained.
        queue = self._queue
        heappop = heapq.heappop
        processed = self._events_processed
        now = self._now
        try:
            while queue:
                if processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                time, _, event = heappop(queue)
                callback = event.callback
                if callback is None:  # cancelled: skip without counting
                    continue
                if time < now:
                    raise SimulationError("event queue went back in time")  # pragma: no cover
                now = time
                self._now = time
                processed += 1
                callback()
                now = self._now
        finally:
            self._events_processed = processed
        return self._now
