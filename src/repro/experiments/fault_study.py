"""Fault study: degradation curves of the four algorithms under faults.

The paper's analysis assumes a reliable machine.  This experiment asks
how the algorithms degrade when the machine is not: for a grid of fault
rates ``r`` it injects processor crashes, stragglers and message loss
(all three channels at rate ``r``, see
:class:`~repro.resilience.faults.FaultConfig`) into the DES runs of HF,
PHF, BA and BA-HF, recovers with the standard policy
(:class:`~repro.resilience.recovery.RecoveryPolicy`), and reports per
``(algorithm, N, rate)`` cell the mean makespan, achieved ratio over the
*surviving* processors, simulated time lost to timeouts, work re-done
and the fraction of degraded trials.

The qualitative expectation (validated in ``tests/test_resilience.py``):
**BA survives where PHF stalls**.  BA's recovery is a local re-target of
one hand-off -- its free-processor ranges give every subproblem a pool
of alternates and no global operation ever waits.  PHF's collective
rounds, by contrast, stall for the full collective-timeout backoff
whenever any participant died, so its recovery cost grows with the
number of rounds.  Sequential HF is fragile in a third way: a piece
whose fixed home died has nowhere else to go and is adopted by ``P_1``.

Design notes for determinism and comparability:

* trial ``t`` of cell ``(algo, N, rate)`` uses the *same* problem
  instance for every rate (seeded from ``(seed, algo, N, t)``) and the
  same fault schedule for every algorithm (seeded from ``(seed, t, N)``
  via :func:`~repro.resilience.faults.fault_plan_for`) -- common random
  numbers, so curves differ only through the injected faults;
* crash sets are nested as the rate grows (a processor crashed at rate
  ``r`` is also crashed at every ``r' > r``), making the curves monotone
  in distribution;
* the chunk layout and merge order are functions of the parameters
  alone, so results are bit-identical for any ``n_jobs`` and the
  journaling/resume machinery of :mod:`repro.experiments.checkpoint`
  applies unchanged.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.checkpoint import ChunkJournal, execute_chunks
from repro.experiments.config import DEFAULT_CHUNK_RETRIES
from repro.experiments.runner import chunk_bounds
from repro.experiments.stochastic import _trial_factory, normalize_algorithm
from repro.problems.samplers import AlphaSampler, UniformAlpha
from repro.problems.synthetic import SyntheticProblem
from repro.resilience import (
    FaultConfig,
    RecoveryPolicy,
    fault_plan_for,
    simulate_with_faults,
)

__all__ = [
    "FAULT_COLUMNS",
    "DEFAULT_FAULT_RATES",
    "FaultStudyRecord",
    "FaultStudyResult",
    "fault_trial_metrics",
    "run_fault_study",
    "render_fault_study",
]

#: Column layout of the per-trial metric matrices.
FAULT_COLUMNS: Tuple[str, ...] = (
    "parallel_time",
    "ratio",
    "ratio_after_recovery",
    "recovery_wait",
    "work_redone",
    "n_recoveries",
    "n_adopted",
    "n_collective_stalls",
    "degraded",
    "n_alive",
)

#: Default fault-rate grid: fault-free anchor plus a geometric ramp.
DEFAULT_FAULT_RATES: Tuple[float, ...] = (0.0, 0.02, 0.05, 0.1, 0.2)

#: Default trial-chunk size (fault trials are full DES runs, keep small).
DEFAULT_FAULT_CHUNK_SIZE = 32


@dataclass(frozen=True)
class FaultStudyRecord:
    """Mean metrics of one ``(algorithm, N, fault_rate)`` cell."""

    algorithm: str
    n_processors: int
    fault_rate: float
    parallel_time: float
    ratio: float
    ratio_after_recovery: float
    recovery_wait: float
    work_redone: float
    degraded_fraction: float
    mean_alive: float
    collective_stalls: float

    def as_dict(self) -> Dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "n": self.n_processors,
            "fault_rate": self.fault_rate,
            "parallel_time": self.parallel_time,
            "ratio": self.ratio,
            "ratio_after_recovery": self.ratio_after_recovery,
            "recovery_wait": self.recovery_wait,
            "work_redone": self.work_redone,
            "degraded_fraction": self.degraded_fraction,
            "mean_alive": self.mean_alive,
            "collective_stalls": self.collective_stalls,
        }


@dataclass(frozen=True)
class FaultStudyResult:
    records: Tuple[FaultStudyRecord, ...]
    n_trials: int
    seed: int

    def get(self, algorithm: str, n: int, rate: float) -> FaultStudyRecord:
        for rec in self.records:
            if (
                rec.algorithm == algorithm
                and rec.n_processors == n
                and rec.fault_rate == rate
            ):
                return rec
        raise KeyError(f"no record for ({algorithm!r}, {n}, {rate})")

    def series(
        self, algorithm: str, n: int, field: str
    ) -> List[Tuple[float, float]]:
        """``(rate, value)`` pairs for one ``(algorithm, N)``, ascending rate."""
        out = [
            (rec.fault_rate, getattr(rec, field))
            for rec in self.records
            if rec.algorithm == algorithm and rec.n_processors == n
        ]
        return sorted(out)

    def algorithms(self) -> List[str]:
        seen: List[str] = []
        for rec in self.records:
            if rec.algorithm not in seen:
                seen.append(rec.algorithm)
        return seen


def fault_trial_metrics(
    algorithm: str,
    n_processors: int,
    fault_rate: float,
    sampler: AlphaSampler,
    *,
    n_trials: int,
    seed: int,
    start: int = 0,
    lam: float = 1.0,
    policy: Optional[RecoveryPolicy] = None,
) -> np.ndarray:
    """Per-trial fault metrics for trials ``start .. start+n_trials-1``.

    Returns an ``(n_trials, len(FAULT_COLUMNS))`` float64 matrix.  The
    problem instance of trial ``t`` depends on ``(seed, algorithm, N,
    t)`` only (not the rate) and the fault schedule on ``(seed, t, N)``
    only (not the algorithm), so curves share randomness wherever that
    sharpens the comparison.
    """
    key = normalize_algorithm(algorithm)
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    policy = policy or RecoveryPolicy()
    cfg = FaultConfig(
        crash_rate=fault_rate,
        straggler_rate=fault_rate,
        msg_loss_rate=fault_rate,
    )
    fac = _trial_factory(key, n_processors, seed)
    alpha = sampler.alpha
    out = np.empty((n_trials, len(FAULT_COLUMNS)), dtype=np.float64)
    for i in range(n_trials):
        t = start + i
        plan = fault_plan_for(cfg, n_processors, seed=seed, trial=t)
        problem = SyntheticProblem(1.0, sampler, seed=fac.seed_for(t))
        res = simulate_with_faults(
            key,
            problem,
            n_processors,
            plan=plan,
            policy=policy,
            alpha=alpha,
            lam=lam,
        )
        fs = res.fault_summary
        out[i] = [
            res.parallel_time,
            res.ratio,
            fs["ratio_after_recovery"],
            fs["recovery_wait"],
            fs["work_redone"],
            fs["n_recoveries"],
            fs["n_adopted"],
            fs["n_collective_stalls"],
            fs["degraded"],
            fs["n_alive"],
        ]
    return out


def _fault_chunk(args) -> Tuple[Hashable, int, np.ndarray]:
    """Worker: one trial chunk of one fault-study cell (picklable)."""
    cell_key, algo, n, rate, sampler, start, stop, seed, lam, policy = args
    matrix = fault_trial_metrics(
        algo,
        n,
        rate,
        sampler,
        n_trials=stop - start,
        seed=seed,
        start=start,
        lam=lam,
        policy=policy,
    )
    return cell_key, start, matrix


def _fault_fingerprint(
    cells: Sequence[Tuple[Hashable, str, int, float]],
    sampler: AlphaSampler,
    *,
    n_trials: int,
    seed: int,
    lam: float,
    policy: RecoveryPolicy,
    chunk_size: int,
) -> Dict[str, Any]:
    return {
        "kind": "fault_study",
        "cells": [[repr(k), a, n, r] for k, a, n, r in cells],
        "sampler": sampler.describe(),
        "n_trials": n_trials,
        "seed": seed,
        "lam": lam,
        "policy": repr(policy),
        "chunk_size": chunk_size,
    }


def run_fault_study(
    *,
    algorithms: Sequence[str] = ("hf", "phf", "ba", "bahf"),
    n_values: Sequence[int] = (32, 64),
    fault_rates: Sequence[float] = DEFAULT_FAULT_RATES,
    sampler: Optional[AlphaSampler] = None,
    n_trials: int = 50,
    seed: int = 20260706,
    lam: float = 1.0,
    policy: Optional[RecoveryPolicy] = None,
    n_jobs: int = 1,
    chunk_size: Optional[int] = None,
    journal_path: Optional["str | os.PathLike[str]"] = None,
    resume: bool = False,
    chunk_timeout: Optional[float] = None,
    chunk_retries: Optional[int] = None,
) -> FaultStudyResult:
    """Degradation curves over a fault-rate grid (trial-chunked).

    Results are bit-identical for any ``n_jobs``; ``journal_path`` /
    ``resume`` enable the crash-safe execution mode (completed chunks
    are replayed exactly, see :mod:`repro.experiments.checkpoint`).
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
    for rate in fault_rates:
        if not (0.0 <= rate <= 1.0):
            raise ValueError(f"fault rates must be in [0, 1], got {rate}")
    sampler = sampler or UniformAlpha(0.1, 0.5)
    policy = policy or RecoveryPolicy()
    algorithms = tuple(normalize_algorithm(a) for a in algorithms)
    size = chunk_size if chunk_size is not None else DEFAULT_FAULT_CHUNK_SIZE
    chunks = chunk_bounds(n_trials, size)
    cells: List[Tuple[Hashable, str, int, float]] = [
        ((algo, n, rate), algo, n, float(rate))
        for algo in algorithms
        for n in n_values
        for rate in fault_rates
    ]
    tasks = [
        (cell_key, algo, n, rate, sampler, start, stop, seed, lam, policy)
        for cell_key, algo, n, rate in cells
        for start, stop in chunks
    ]
    keys = [
        f"{cell_key!r}:{start}"
        for cell_key, _, _, _ in cells
        for start, _ in chunks
    ]
    cell_by_key = {
        f"{cell_key!r}:{start}": cell_key
        for cell_key, _, _, _ in cells
        for start, _ in chunks
    }
    retries = DEFAULT_CHUNK_RETRIES if chunk_retries is None else chunk_retries
    journal = (
        ChunkJournal.open(
            journal_path,
            fingerprint=_fault_fingerprint(
                cells,
                sampler,
                n_trials=n_trials,
                seed=seed,
                lam=lam,
                policy=policy,
                chunk_size=size,
            ),
            resume=resume,
        )
        if journal_path is not None
        else None
    )
    try:
        raw = execute_chunks(
            tasks,
            _fault_chunk,
            keys=keys,
            n_jobs=n_jobs,
            journal=journal,
            encode=lambda result: {
                "start": result[1],
                "matrix": result[2].tolist(),
            },
            timeout=chunk_timeout,
            retries=retries,
        )
    finally:
        if journal is not None:
            journal.close()
    raw = [
        item
        if not isinstance(item, dict)
        else (
            cell_by_key[keys[i]],
            int(item["start"]),
            np.asarray(item["matrix"], dtype=np.float64).reshape(
                -1, len(FAULT_COLUMNS)
            ),
        )
        for i, item in enumerate(raw)
    ]

    per_cell: Dict[Hashable, List[Tuple[int, np.ndarray]]] = {
        cell_key: [] for cell_key, _, _, _ in cells
    }
    for cell_key, start, matrix in raw:
        per_cell[cell_key].append((start, matrix))

    col = {name: j for j, name in enumerate(FAULT_COLUMNS)}
    records: List[FaultStudyRecord] = []
    for cell_key, algo, n, rate in cells:
        matrix = np.concatenate(
            [m for _, m in sorted(per_cell[cell_key], key=lambda it: it[0])],
            axis=0,
        )
        mean = matrix.sum(axis=0) / n_trials
        records.append(
            FaultStudyRecord(
                algorithm=algo,
                n_processors=n,
                fault_rate=rate,
                parallel_time=float(mean[col["parallel_time"]]),
                ratio=float(mean[col["ratio"]]),
                ratio_after_recovery=float(mean[col["ratio_after_recovery"]]),
                recovery_wait=float(mean[col["recovery_wait"]]),
                work_redone=float(mean[col["work_redone"]]),
                degraded_fraction=float(mean[col["degraded"]]),
                mean_alive=float(mean[col["n_alive"]]),
                collective_stalls=float(mean[col["n_collective_stalls"]]),
            )
        )
    return FaultStudyResult(records=tuple(records), n_trials=n_trials, seed=seed)


def render_fault_study(result: FaultStudyResult) -> str:
    """ASCII degradation table: one block per N, one row per rate."""
    lines = [
        f"Fault study -- mean of {result.n_trials} trials per cell "
        "(T = makespan, r* = ratio over survivors, W = recovery wait, "
        "D% = degraded trials)",
    ]
    algos = result.algorithms()
    ns = sorted({rec.n_processors for rec in result.records})
    rates = sorted({rec.fault_rate for rec in result.records})
    header = " | ".join(
        ["   rate"] + [f"{a}: T / r* / W / D%".rjust(26) for a in algos]
    )
    for n in ns:
        lines.append(f"\nN = {n}")
        lines.append(header)
        lines.append("-" * len(header))
        for rate in rates:
            row = [f"{rate:7.3f}"]
            for algo in algos:
                rec = result.get(algo, n, rate)
                row.append(
                    f"{rec.parallel_time:7.1f} /{rec.ratio_after_recovery:5.2f} "
                    f"/{rec.recovery_wait:6.1f} /{100.0 * rec.degraded_fraction:3.0f}%"
                )
            lines.append(" | ".join(row))
    return "\n".join(lines)
