"""Unit tests for 2-D grid-domain problems (recursive coordinate bisection)."""

import numpy as np
import pytest

from repro.core import run_ba, run_hf
from repro.problems import (
    GridDomainProblem,
    gaussian_hotspot_density,
    uniform_density,
)


class TestConstruction:
    def test_weight_is_density_sum(self):
        density = np.arange(1, 13, dtype=float).reshape(3, 4)
        p = GridDomainProblem(density)
        assert p.weight == pytest.approx(density.sum())

    def test_region_defaults_to_full_grid(self):
        p = GridDomainProblem(uniform_density((4, 6)))
        assert p.region == (0, 4, 0, 6)
        assert p.n_cells == 24
        assert p.shape == (4, 6)

    def test_subregion_weight(self):
        density = np.arange(1, 13, dtype=float).reshape(3, 4)
        p = GridDomainProblem(density, region=(1, 3, 0, 2))
        assert p.weight == pytest.approx(density[1:3, 0:2].sum())

    def test_rejects_empty_density(self):
        with pytest.raises(ValueError):
            GridDomainProblem(np.ones((0, 3)))

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            GridDomainProblem(np.ones(5))

    def test_rejects_nonpositive_cells(self):
        with pytest.raises(ValueError):
            GridDomainProblem(np.zeros((2, 2)))

    @pytest.mark.parametrize(
        "region", [(0, 0, 0, 2), (0, 3, 0, 5), (-1, 2, 0, 2), (2, 1, 0, 2)]
    )
    def test_rejects_bad_region(self, region):
        with pytest.raises(ValueError):
            GridDomainProblem(np.ones((3, 4)), region=region)


class TestPrefixSums:
    def test_rect_sums_match_direct(self):
        rng = np.random.default_rng(0)
        density = rng.uniform(0.5, 2.0, size=(10, 13))
        p = GridDomainProblem(density)
        for _ in range(50):
            r0, r1 = sorted(rng.integers(0, 11, size=2))
            c0, c1 = sorted(rng.integers(0, 14, size=2))
            if r0 == r1 or c0 == c1:
                continue
            sub = GridDomainProblem(density, region=(r0, r1, c0, c1))
            assert sub.weight == pytest.approx(density[r0:r1, c0:c1].sum())


class TestBisection:
    def test_exact_conservation(self):
        p = GridDomainProblem(gaussian_hotspot_density((16, 16), seed=1))
        a, b = p.bisect()
        assert a.weight + b.weight == pytest.approx(p.weight)
        assert a.n_cells + b.n_cells == p.n_cells

    def test_splits_longer_axis(self):
        p = GridDomainProblem(uniform_density((4, 10)))
        a, b = p.bisect()
        # columns axis (longer) is split: rows stay 4
        assert a.shape[0] == 4 and b.shape[0] == 4

    def test_uniform_density_splits_evenly(self):
        p = GridDomainProblem(uniform_density((8, 8)))
        a, b = p.bisect()
        assert a.weight == pytest.approx(b.weight)

    def test_single_row_splits_columns(self):
        p = GridDomainProblem(uniform_density((1, 6)))
        a, b = p.bisect()
        assert a.n_cells + b.n_cells == 6

    def test_single_column_splits_rows(self):
        p = GridDomainProblem(uniform_density((6, 1)))
        a, b = p.bisect()
        assert a.n_cells + b.n_cells == 6

    def test_single_cell_atomic(self):
        p = GridDomainProblem(uniform_density((1, 1)))
        assert not p.can_bisect
        with pytest.raises(ValueError, match="single-cell"):
            p.bisect()

    def test_children_share_prefix_table(self):
        p = GridDomainProblem(uniform_density((8, 8)))
        a, b = p.bisect()
        assert a._prefix is p._prefix
        assert b._prefix is p._prefix

    def test_hotspot_split_balances_work_not_area(self):
        density = uniform_density((4, 32))
        density[:, :4] = 100.0  # heavy stripe on the left
        p = GridDomainProblem(density)
        a, b = p.bisect()
        # balanced in work => very unbalanced in area
        assert abs(a.weight - b.weight) / p.weight < 0.3
        assert max(a.n_cells, b.n_cells) > 3 * min(a.n_cells, b.n_cells)


class TestDensities:
    def test_uniform_density(self):
        d = uniform_density((3, 5))
        assert d.shape == (3, 5)
        assert (d == 1.0).all()

    def test_hotspot_density_positive_and_peaked(self):
        d = gaussian_hotspot_density((20, 20), n_hotspots=2, peak=30.0, seed=2)
        assert (d >= 1.0).all()
        assert d.max() > 10.0

    def test_hotspot_reproducible(self):
        a = gaussian_hotspot_density((10, 10), seed=3)
        b = gaussian_hotspot_density((10, 10), seed=3)
        assert np.array_equal(a, b)


class TestEndToEnd:
    def test_regions_tile_grid_exactly(self):
        p = GridDomainProblem(gaussian_hotspot_density((24, 24), seed=4))
        part = run_ba(p, 9)
        covered = np.zeros((24, 24), dtype=int)
        for piece in part.pieces:
            r0, r1, c0, c1 = piece.region
            covered[r0:r1, c0:c1] += 1
        assert (covered == 1).all()

    def test_hf_beats_naive_on_hotspots(self):
        density = gaussian_hotspot_density((32, 32), n_hotspots=1, peak=60.0, seed=5)
        p = GridDomainProblem(density)
        part = run_hf(p, 8)
        # naive equal-area strips
        strips = [density[:, 4 * k : 4 * (k + 1)].sum() for k in range(8)]
        naive_ratio = max(strips) / (density.sum() / 8)
        assert part.ratio < naive_ratio
