"""Tests for the fault-injection + recovery layer (``repro.resilience``).

The two load-bearing invariants:

* **Inert when empty** -- an empty :class:`FaultPlan` leaves every
  fault-aware simulation bit-identical to the fault-free baseline, so
  the resilience layer cannot perturb the paper's headline numbers.
* **Deterministic faults** -- plans are pure functions of
  ``(config, n, seed, trial)`` and the fault study's metrics do not
  depend on ``n_jobs``, so degradation curves are reproducible.
"""

import math

import pytest

from repro.resilience import (
    FaultConfig,
    FaultPlan,
    RecoveryPolicy,
    fault_plan_for,
    simulate_with_faults,
)
from repro.simulator.ba_sim import simulate_ba
from repro.simulator.bahf_sim import simulate_bahf
from repro.simulator.hf_sim import simulate_hf
from repro.simulator.phf_sim import simulate_phf
from repro.problems.synthetic import SyntheticProblem

BASELINES = {
    "hf": simulate_hf,
    "phf": simulate_phf,
    "ba": simulate_ba,
    "bahf": simulate_bahf,
}


def problem(seed=42, weight=1000.0):
    return SyntheticProblem(weight, seed=seed)


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultConfig(crash_rate=-0.1)
        with pytest.raises(ValueError, match="msg_loss_rate"):
            FaultConfig(msg_loss_rate=1.5)
        with pytest.raises(ValueError, match="straggler_rate"):
            FaultConfig(straggler_rate=float("nan"))

    def test_straggler_factor_is_a_slowdown(self):
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultConfig(straggler_factor=0.5)

    def test_null_config(self):
        assert FaultConfig().is_null
        assert not FaultConfig(crash_rate=0.1).is_null


class TestFaultPlan:
    def test_empty_plan_is_inert(self):
        plan = FaultPlan.empty(8)
        assert plan.is_empty
        assert plan.alive(3, 1e12)
        assert plan.crashed_by(1e12) == 0
        assert plan.scale_work(1, 7.0) == 7.0
        assert plan.scale_comm(1, 7.0) == 7.0
        assert not plan.send_lost(0)
        assert plan.send_delay(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="n_processors"):
            FaultPlan(n_processors=0, crash_time=(), slowdown=())
        with pytest.raises(ValueError, match="crash_time"):
            FaultPlan(n_processors=2, crash_time=(1.0,), slowdown=(1.0, 1.0))
        with pytest.raises(ValueError, match="slowdown"):
            FaultPlan(
                n_processors=1, crash_time=(math.inf,), slowdown=(0.5,)
            )
        with pytest.raises(ValueError, match="crash times"):
            FaultPlan(n_processors=1, crash_time=(-1.0,), slowdown=(1.0,))

    def test_plan_is_deterministic(self):
        cfg = FaultConfig(crash_rate=0.5, straggler_rate=0.5, msg_loss_rate=0.3)
        a = fault_plan_for(cfg, 16, seed=123, trial=7)
        b = fault_plan_for(cfg, 16, seed=123, trial=7)
        assert a == b
        assert a.send_lost(11) == b.send_lost(11)
        assert a.send_delay(11) == b.send_delay(11)

    def test_trials_get_distinct_plans(self):
        cfg = FaultConfig(crash_rate=0.5)
        plans = {
            fault_plan_for(cfg, 16, seed=123, trial=t).crash_time
            for t in range(8)
        }
        assert len(plans) > 1

    def test_null_config_draws_empty_plan(self):
        plan = fault_plan_for(FaultConfig(), 8, seed=1, trial=0)
        assert plan.is_empty

    def test_origin_protected(self):
        cfg = FaultConfig(crash_rate=1.0, crash_window=8.0)
        plan = fault_plan_for(cfg, 16, seed=5, trial=0)
        assert math.isinf(plan.crash_time[0])
        assert plan.crashed_by(8.0) == 15

    def test_bad_trial_rejected(self):
        with pytest.raises(ValueError, match="trial"):
            fault_plan_for(FaultConfig(), 4, seed=1, trial=-1)


class TestEmptyPlanBitIdentity:
    """The fault-free path must be *bit-identical* to the baseline DES."""

    @pytest.mark.parametrize("algorithm", sorted(BASELINES))
    @pytest.mark.parametrize("n", [1, 2, 5, 16, 64])
    def test_matches_baseline(self, algorithm, n):
        base = BASELINES[algorithm](problem(), n)
        res = simulate_with_faults(
            algorithm, problem(), n, plan=FaultPlan.empty(n)
        )
        assert res.parallel_time == base.parallel_time
        assert res.n_messages == base.n_messages
        assert res.n_collectives == base.n_collectives
        assert res.collective_time == base.collective_time
        assert res.n_bisections == base.n_bisections
        assert res.n_control_messages == base.n_control_messages
        assert res.utilization == base.utilization
        assert res.phases == base.phases
        assert res.partition.weights == base.partition.weights
        assert res.ratio == base.ratio

    def test_fault_summary_reports_full_survival(self):
        res = simulate_with_faults(
            "ba", problem(), 8, plan=FaultPlan.empty(8)
        )
        assert res.fault_summary["n_alive"] == 8.0
        assert res.fault_summary["n_crashed"] == 0.0
        assert res.fault_summary["degraded"] == 0.0
        assert not res.degraded


class TestRecoveryPolicy:
    def test_backoff_is_exponential(self):
        pol = RecoveryPolicy(detect_timeout=2.0, backoff=3.0)
        assert pol.retry_wait(0) == 2.0
        assert pol.retry_wait(1) == 6.0
        assert pol.retry_wait(2) == 18.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(detect_timeout=-1.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)


class TestFaultyRuns:
    def test_crash_triggers_recovery(self):
        # Half the machine fail-stops early: PHF must re-acquire targets
        # from the survivor pool and report the recovery work it paid.
        n = 16
        crash = [math.inf if i % 2 == 0 else 0.5 for i in range(n)]
        plan = FaultPlan(
            n_processors=n, crash_time=tuple(crash), slowdown=(1.0,) * n
        )
        res = simulate_with_faults("phf", problem(), n, plan=plan)
        res.partition.validate()
        assert res.fault_summary["n_crashed"] == 8.0
        assert res.fault_summary["n_recoveries"] > 0
        assert res.fault_summary["recovery_wait"] > 0.0
        # Survivors hold all the work: ratio over survivors is finite.
        assert res.fault_summary["ratio_after_recovery"] >= 1.0

    def test_ba_adopts_when_range_dies(self):
        # BA's hand-off target range can be entirely dead; the sender
        # then keeps the piece (adoption) rather than erroring out.
        n = 16
        crash = [math.inf if i % 2 == 0 else 0.5 for i in range(n)]
        plan = FaultPlan(
            n_processors=n, crash_time=tuple(crash), slowdown=(1.0,) * n
        )
        res = simulate_with_faults("ba", problem(), n, plan=plan)
        res.partition.validate()
        assert res.degraded
        assert res.fault_summary["n_adopted"] > 0
        assert res.fault_summary["ratio_after_recovery"] >= 1.0

    def test_straggler_stretches_makespan(self):
        n = 8
        plan = FaultPlan(
            n_processors=n,
            crash_time=(math.inf,) * n,
            slowdown=(1.0,) + (8.0,) * (n - 1),
        )
        base = simulate_ba(problem(), n)
        res = simulate_with_faults("ba", problem(), n, plan=plan)
        assert res.parallel_time > base.parallel_time
        assert res.partition.weights == base.partition.weights

    def test_total_loss_degrades_not_raises(self):
        # Every message lost: senders exhaust retries and adopt their
        # pieces -- the run degrades but still terminates validly.
        n = 8
        plan = FaultPlan(
            n_processors=n,
            crash_time=(math.inf,) * n,
            slowdown=(1.0,) * n,
            msg_loss_rate=1.0,
            channel_seed=99,
        )
        res = simulate_with_faults("ba", problem(), n, plan=plan)
        res.partition.validate()
        assert res.degraded
        assert res.fault_summary["n_adopted"] > 0

    def test_message_delay_slows_but_preserves_pieces(self):
        n = 8
        plan = FaultPlan(
            n_processors=n,
            crash_time=(math.inf,) * n,
            slowdown=(1.0,) * n,
            msg_delay_rate=1.0,
            msg_delay=5.0,
            channel_seed=3,
        )
        base = simulate_ba(problem(), n)
        res = simulate_with_faults("ba", problem(), n, plan=plan)
        assert res.parallel_time > base.parallel_time
        assert res.partition.weights == base.partition.weights
        assert not res.degraded

    @pytest.mark.parametrize("algorithm", sorted(BASELINES))
    def test_all_algorithms_survive_crashes(self, algorithm):
        cfg = FaultConfig(crash_rate=0.3, crash_window=16.0)
        plan = fault_plan_for(cfg, 16, seed=2026, trial=3)
        res = simulate_with_faults(algorithm, problem(), 16, plan=plan)
        res.partition.validate()
        assert res.fault_summary["n_alive"] >= 1.0

    def test_phf_pays_collective_stalls(self):
        # A dead processor makes PHF's global rounds time out; BA has no
        # collectives to stall.  This is the paper's architectural claim.
        n = 16
        crash = [math.inf] * n
        for i in (3, 7, 11):
            crash[i] = 2.0
        plan = FaultPlan(
            n_processors=n, crash_time=tuple(crash), slowdown=(1.0,) * n
        )
        phf = simulate_with_faults("phf", problem(), n, plan=plan)
        ba = simulate_with_faults("ba", problem(), n, plan=plan)
        assert phf.fault_summary["n_collective_stalls"] > 0
        assert ba.fault_summary["n_collective_stalls"] == 0

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            simulate_with_faults(
                "qsort", problem(), 4, plan=FaultPlan.empty(4)
            )

    def test_plan_size_must_match(self):
        with pytest.raises(ValueError):
            simulate_with_faults(
                "ba", problem(), 8, plan=FaultPlan.empty(4)
            )


class TestFaultStudyDeterminism:
    def test_metrics_independent_of_n_jobs(self):
        from repro.experiments.fault_study import run_fault_study

        kw = dict(
            algorithms=("ba", "phf"),
            n_values=(8,),
            fault_rates=(0.0, 0.2),
            n_trials=8,
            seed=31,
            chunk_size=3,
        )
        serial = run_fault_study(n_jobs=1, **kw)
        parallel = run_fault_study(n_jobs=4, **kw)
        assert [r.as_dict() for r in serial.records] == [
            r.as_dict() for r in parallel.records
        ]

    def test_rate_zero_column_matches_fault_free_des(self):
        from repro.experiments.fault_study import run_fault_study

        result = run_fault_study(
            algorithms=("hf",),
            n_values=(8,),
            fault_rates=(0.0,),
            n_trials=4,
            seed=5,
        )
        (rec,) = result.records
        assert rec.recovery_wait == 0.0
        assert rec.work_redone == 0.0
        assert rec.degraded_fraction == 0.0
        assert rec.mean_alive == 8.0

    def test_monotone_crash_exposure(self):
        # Common-random-numbers design: the same trial's crash set only
        # grows with the rate, so mean survivors fall monotonically.
        from repro.experiments.fault_study import run_fault_study

        result = run_fault_study(
            algorithms=("ba",),
            n_values=(16,),
            fault_rates=(0.0, 0.1, 0.3, 0.6),
            n_trials=6,
            seed=17,
        )
        alive = [
            result.get("ba", 16, rate).mean_alive
            for rate in (0.0, 0.1, 0.3, 0.6)
        ]
        assert alive == sorted(alive, reverse=True)
