"""Unit tests for the free-processor managers (Section 3.4)."""

import pytest

from repro.problems import FixedAlpha, SyntheticProblem
from repro.simulator import (
    CentralManager,
    NumberedFreePool,
    RandomStealManager,
    RangeManager,
    simulate_ba,
    simulate_hf,
    simulate_phf,
)


class TestRangeManager:
    def test_initial_range(self):
        assert RangeManager(8).initial_range() == (1, 8)

    def test_split_semantics(self):
        rm = RangeManager(10)
        r1, r2, dst = rm.split((1, 10), 4)
        assert r1 == (1, 4)
        assert r2 == (5, 10)
        assert dst == 5

    def test_split_subrange(self):
        rm = RangeManager(10)
        r1, r2, dst = rm.split((5, 10), 2)
        assert r1 == (5, 6)
        assert r2 == (7, 10)
        assert dst == 7

    def test_split_preserves_size(self):
        rm = RangeManager(100)
        r1, r2, _ = rm.split((3, 77), 30)
        assert (r1[1] - r1[0] + 1) + (r2[1] - r2[0] + 1) == 75

    @pytest.mark.parametrize("n1", [0, 6, 7])
    def test_invalid_split_rejected(self, n1):
        rm = RangeManager(10)
        with pytest.raises(ValueError):
            rm.split((1, 6), n1)

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            RangeManager(0)


class TestCentralManager:
    def test_hands_out_ascending_ids(self):
        cm = CentralManager(5)
        assert [cm.acquire() for _ in range(4)] == [2, 3, 4, 5]

    def test_first_busy_excluded(self):
        cm = CentralManager(4, first_busy=3)
        assert [cm.acquire() for _ in range(3)] == [1, 2, 4]

    def test_free_count_decreases(self):
        cm = CentralManager(4)
        assert cm.free_count == 3
        cm.acquire()
        assert cm.free_count == 2

    def test_exhaustion_raises(self):
        cm = CentralManager(2)
        cm.acquire()
        with pytest.raises(RuntimeError):
            cm.acquire()

    def test_free_ids_reflect_consumption(self):
        cm = CentralManager(5)
        cm.acquire()
        assert cm.free_ids() == [3, 4, 5]


class TestNumberedFreePool:
    def test_resolve_is_one_based(self):
        pool = NumberedFreePool([7, 3, 9])
        assert pool.resolve(1) == 3
        assert pool.resolve(2) == 7
        assert pool.resolve(3) == 9

    def test_consume_advances_numbering(self):
        pool = NumberedFreePool([3, 7, 9, 11])
        assert pool.consume(2) == [3, 7]
        assert pool.remaining == 2
        assert pool.resolve(1) == 9

    def test_consume_all(self):
        pool = NumberedFreePool([1, 2])
        pool.consume(2)
        assert pool.remaining == 0

    def test_over_consume_rejected(self):
        pool = NumberedFreePool([1, 2])
        with pytest.raises(ValueError):
            pool.consume(3)

    def test_resolve_out_of_range_rejected(self):
        pool = NumberedFreePool([5])
        with pytest.raises(ValueError):
            pool.resolve(2)

    def test_empty_pool(self):
        pool = NumberedFreePool([])
        assert pool.remaining == 0
        assert pool.consume(0) == []


class TestSingleProcessor:
    """N = 1: every manager degenerates to 'nothing to hand out'."""

    def test_central_manager_has_no_free(self):
        cm = CentralManager(1)
        assert cm.free_count == 0
        assert cm.free_ids() == []
        with pytest.raises(RuntimeError):
            cm.acquire()

    def test_steal_manager_has_no_free(self):
        sm = RandomStealManager(1, seed=42)
        assert sm.free_count == 0
        with pytest.raises(RuntimeError):
            sm.acquire()

    def test_range_manager_cannot_split(self):
        rm = RangeManager(1)
        assert rm.initial_range() == (1, 1)
        with pytest.raises(ValueError):
            rm.split((1, 1), 1)

    @pytest.mark.parametrize(
        "simulate", [simulate_hf, simulate_ba, simulate_phf]
    )
    def test_simulations_do_no_bisections(self, simulate):
        problem = SyntheticProblem(1.0, FixedAlpha(0.4), seed=7)
        res = simulate(problem, 1)
        assert res.n_bisections == 0
        assert res.n_messages == 0
        assert res.parallel_time == 0.0


class TestContention:
    """All-processors-busy behaviour: exhaustion must fail loudly."""

    def test_central_manager_drains_then_raises(self):
        cm = CentralManager(4)
        assert [cm.acquire() for _ in range(3)] == [2, 3, 4]
        assert cm.free_count == 0
        with pytest.raises(RuntimeError):
            cm.acquire()

    def test_steal_manager_drains_then_raises(self):
        sm = RandomStealManager(4, seed=3)
        claimed = set()
        while sm.free_count:
            proc, probes = sm.acquire()
            assert probes >= 1
            claimed.add(proc)
        assert claimed == {2, 3, 4}
        with pytest.raises(RuntimeError):
            sm.acquire()

    def test_pool_resolve_rejected_after_drain(self):
        pool = NumberedFreePool([2, 5])
        pool.consume(2)
        with pytest.raises(ValueError):
            pool.resolve(1)
        assert pool.consume(0) == []


class TestReleaseOrdering:
    """Hand-out order is deterministic and independent of lookups."""

    def test_central_manager_order_is_reproducible(self):
        a = CentralManager(6, first_busy=2)
        b = CentralManager(6, first_busy=2)
        assert [a.acquire() for _ in range(5)] == [
            b.acquire() for _ in range(5)
        ]

    def test_central_manager_free_ids_is_pure(self):
        cm = CentralManager(5)
        before = cm.free_ids()
        assert cm.free_ids() == before  # lookup must not consume
        assert cm.acquire() == before[0]

    def test_steal_manager_seed_determinism(self):
        first = RandomStealManager(9, seed=11)
        seq = [first.acquire() for _ in range(8)]
        rerun = RandomStealManager(9, seed=11)
        assert [rerun.acquire() for _ in range(8)] == seq

    def test_pool_resolve_matches_consume_order(self):
        ids = [9, 4, 7, 2]
        pool = NumberedFreePool(ids)
        expected = [pool.resolve(k) for k in range(1, 5)]
        assert expected == sorted(ids)  # numbering is ascending by id
        assert NumberedFreePool(ids).consume(4) == expected

    def test_pool_numbering_shifts_after_consume(self):
        pool = NumberedFreePool([1, 3, 5, 8])
        first = pool.consume(1)
        assert first == [1]
        # remaining numbers renumber from 1 in the same ascending order
        assert [pool.resolve(k) for k in (1, 2, 3)] == [3, 5, 8]
