"""Unit tests for the alpha-hat samplers."""

import numpy as np
import pytest

from repro.problems import BetaAlpha, DiscreteAlpha, FixedAlpha, UniformAlpha


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestUniformAlpha:
    def test_support_bounds(self, rng):
        s = UniformAlpha(0.1, 0.4)
        draws = s.sample_many(rng, 5000)
        assert draws.min() >= 0.1
        assert draws.max() <= 0.4
        assert s.alpha == 0.1 and s.beta == 0.4

    def test_mean_near_midpoint(self, rng):
        draws = UniformAlpha(0.2, 0.4).sample_many(rng, 20000)
        assert draws.mean() == pytest.approx(0.3, abs=0.005)

    def test_single_draw_in_range(self, rng):
        s = UniformAlpha(0.05, 0.5)
        for _ in range(100):
            assert 0.05 <= s.sample(rng) <= 0.5

    def test_degenerate_interval(self, rng):
        s = UniformAlpha(0.3, 0.3)
        assert s.sample(rng) == pytest.approx(0.3)

    def test_describe(self):
        assert UniformAlpha(0.1, 0.5).describe() == "U[0.1,0.5]"

    @pytest.mark.parametrize("lo,hi", [(0.0, 0.5), (0.1, 0.6), (0.4, 0.2), (-0.1, 0.3)])
    def test_invalid_intervals(self, lo, hi):
        with pytest.raises(ValueError):
            UniformAlpha(lo, hi)

    def test_hashable_and_equal(self):
        assert UniformAlpha(0.1, 0.5) == UniformAlpha(0.1, 0.5)
        assert hash(UniformAlpha(0.1, 0.5)) == hash(UniformAlpha(0.1, 0.5))


class TestFixedAlpha:
    def test_always_same_value(self, rng):
        s = FixedAlpha(0.25)
        assert s.sample(rng) == 0.25
        assert (s.sample_many(rng, 100) == 0.25).all()
        assert s.alpha == s.beta == 0.25

    def test_describe(self):
        assert "0.25" in FixedAlpha(0.25).describe()

    def test_invalid_value(self):
        with pytest.raises(ValueError):
            FixedAlpha(0.75)


class TestBetaAlpha:
    def test_support_bounds(self, rng):
        s = BetaAlpha(2.0, 5.0, low=0.1, high=0.4)
        draws = s.sample_many(rng, 5000)
        assert draws.min() >= 0.1
        assert draws.max() <= 0.4

    def test_skew_direction(self, rng):
        # a<b skews towards low end
        left = BetaAlpha(1.0, 4.0, low=0.1, high=0.5).sample_many(rng, 10000)
        right = BetaAlpha(4.0, 1.0, low=0.1, high=0.5).sample_many(rng, 10000)
        assert left.mean() < right.mean()

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            BetaAlpha(0.0, 1.0)

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            BetaAlpha(1.0, 1.0, low=0.4, high=0.2)


class TestDiscreteAlpha:
    def test_uniform_default_probabilities(self, rng):
        s = DiscreteAlpha(values=(0.1, 0.3, 0.5))
        draws = s.sample_many(rng, 3000)
        assert set(np.unique(draws)).issubset({0.1, 0.3, 0.5})
        assert s.alpha == 0.1 and s.beta == 0.5

    def test_explicit_probabilities(self, rng):
        s = DiscreteAlpha(values=(0.2, 0.4), probabilities=(0.9, 0.1))
        draws = s.sample_many(rng, 5000)
        assert (draws == 0.2).mean() > 0.8

    def test_zero_probability_excluded_from_support(self):
        s = DiscreteAlpha(values=(0.1, 0.3), probabilities=(0.0, 1.0))
        assert s.alpha == 0.3
        assert s.beta == 0.3

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            DiscreteAlpha(values=(0.1, 0.2), probabilities=(0.5, 0.6))
        with pytest.raises(ValueError):
            DiscreteAlpha(values=(0.1, 0.2), probabilities=(1.0,))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            DiscreteAlpha(values=())

    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError):
            DiscreteAlpha(values=(0.7,))


class TestBatchedSamplerApi:
    SAMPLERS = [
        UniformAlpha(0.01, 0.5),
        FixedAlpha(0.3),
        BetaAlpha(2.0, 5.0),
        DiscreteAlpha((0.2, 0.35, 0.5)),
    ]

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.describe())
    def test_sample_block_matches_flat_stream(self, sampler):
        flat = sampler.sample_many(np.random.default_rng(3), 12)
        block = sampler.sample_block(np.random.default_rng(3), (3, 4))
        assert block.shape == (3, 4)
        np.testing.assert_array_equal(block.ravel(), flat)

    @pytest.mark.parametrize("sampler", SAMPLERS, ids=lambda s: s.describe())
    def test_trial_matrix_rows_match_per_trial_streams(self, sampler):
        rngs = [np.random.default_rng(seed) for seed in (5, 6, 7)]
        matrix = sampler.sample_trial_matrix(rngs, 9)
        assert matrix.shape == (3, 9) and matrix.dtype == np.float64
        for row, seed in zip(matrix, (5, 6, 7)):
            expected = sampler.sample_many(np.random.default_rng(seed), 9)
            np.testing.assert_array_equal(row, expected)

    def test_trial_matrix_zero_draws(self):
        matrix = UniformAlpha(0.1, 0.5).sample_trial_matrix(
            [np.random.default_rng(0)], 0
        )
        assert matrix.shape == (1, 0)

    def test_trial_matrix_rejects_bad_args(self):
        sampler = UniformAlpha(0.1, 0.5)
        with pytest.raises(ValueError):
            sampler.sample_trial_matrix([], 4)
        with pytest.raises(ValueError):
            sampler.sample_trial_matrix([np.random.default_rng(0)], -1)
