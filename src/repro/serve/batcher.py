"""Micro-batching: many concurrent requests, one kernel call.

Requests arriving within one batching window are grouped by
``(algorithm, n, sampler, lam)`` and each group is answered by a single
stacked ``(sum(trials), N-1)`` draw-matrix kernel call.  Row ``i`` of a
request's slice is drawn from the per-trial generator
``_trial_factory(algorithm, n, seed).generator_for(i)`` -- exactly what
:func:`repro.experiments.stochastic.trial_ratios` uses -- so a request's
ratios are bit-identical no matter which requests it shared a batch
with, which faults fired, or whether the degraded path served it.

Dispatch goes through the supervised executor
(:func:`repro.experiments.checkpoint.execute_chunks`): SIGKILLed kernel
workers rebuild the pool, failed attempts retry with backoff, hopeless
groups quarantine (``strict=False``) and only their requests fail.  The
engine wires three service-level behaviours on top:

* **circuit breaker** -- repeated dispatch failures trip the native
  kernel + worker-pool path; while open, batches are computed inline on
  the NumPy reference kernels (slower, identical results, nothing left
  to kill).  A half-open probe restores the native path.
* **hedged retries** -- a batch straggling past the hedge delay gets a
  duplicate inline dispatch; results are deterministic, so whichever
  finishes first answers and the loser is discarded.
* **deadline propagation** -- the tightest per-request deadline in a
  batch bounds the kernel attempt runtime inside ``execute_chunks``
  (the server's ``asyncio`` wait is the backstop that actually emits
  the 504).

The kernel worker (:func:`_compute_rows`) is module-level and its task
dicts hold only primitives, frozen samplers and arrays, so process
pools can pickle them.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.chaos import ChaosSpec, RunReport
from repro.core.batch import (
    HEAP_MIN_N,
    ba_final_weights_batch,
    bahf_final_weights_batch,
    hf_final_weights_batch,
)
from repro.experiments.checkpoint import execute_chunks
from repro.experiments.stochastic import _trial_factory
from repro.serve.breaker import CircuitBreaker
from repro.serve.protocol import PartitionRequest, response_payload
from repro.serve.report import ServeReport

__all__ = [
    "BatchEngine",
    "BatchFailedError",
    "MicroBatcher",
]


class BatchFailedError(RuntimeError):
    """The batch carrying this request was quarantined; maps to HTTP 500."""


def _fallback_method(algorithm: str, n: int) -> str:
    """The NumPy reference kernel for the degraded path."""
    if algorithm in ("hf", "phf"):
        return "frontier" if n < HEAP_MIN_N else "heap"
    return "frontier"


def _compute_rows(task: Dict[str, Any]) -> np.ndarray:
    """Pool worker: ratios for one stacked draw matrix (pure function)."""
    algorithm = task["algorithm"]
    n = task["n"]
    draws = task["draws"]
    method = task["method"]
    if algorithm in ("hf", "phf"):
        weights = hf_final_weights_batch(1.0, n, draws, method=method)
    elif algorithm == "ba":
        weights = ba_final_weights_batch(1.0, n, draws, method=method)
    else:
        weights = bahf_final_weights_batch(
            1.0, n, draws,
            alpha=task["alpha"], lam=task["lam"], method=method,
        )
    return weights.max(axis=1) * n


def request_draws(request: PartitionRequest) -> np.ndarray:
    """The ``(n_trials, N-1)`` draw matrix for one request.

    Identical to what a direct :func:`trial_ratios` call for the same
    ``(algorithm, n, sampler, seed, n_trials)`` consumes -- the anchor of
    the service's determinism guarantee.
    """
    factory = _trial_factory(request.algorithm, request.n, request.seed)
    rngs = [factory.generator_for(t) for t in range(request.n_trials)]
    return request.sampler.sample_trial_matrix(rngs, max(0, request.n - 1))


@dataclass
class _Pending:
    """One admitted request waiting for (or riding in) a batch."""

    request: PartitionRequest
    future: "asyncio.Future[Dict[str, Any]]"
    deadline_at: Optional[float]  # monotonic, None = no deadline


@dataclass
class _Slice:
    """Where one request's rows live in the dispatched task list."""

    item: _Pending
    task_idx: List[Tuple[int, int, int]]  # (task index, row start, row stop)


class BatchEngine:
    """Builds, dispatches and settles micro-batches."""

    def __init__(
        self,
        *,
        report: ServeReport,
        breaker: Optional[CircuitBreaker] = None,
        workers: int = 1,
        backend: str = "processes",
        retries: int = 3,
        chaos: Optional[ChaosSpec] = None,
        chaos_batches: int = 0,
        hedge_after_s: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if chaos_batches < 0:
            raise ValueError(f"chaos_batches must be >= 0, got {chaos_batches}")
        if hedge_after_s is not None and hedge_after_s <= 0:
            raise ValueError(f"hedge_after_s must be positive, got {hedge_after_s}")
        self.report = report
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.workers = workers
        self.backend = backend
        self.retries = retries
        self.chaos = chaos
        self.chaos_batches = chaos_batches
        self.hedge_after_s = hedge_after_s
        self._batch_seq = 0
        self._background: Set["asyncio.Task[Any]"] = set()

    # -- batch construction --------------------------------------------

    def _build(
        self, items: Sequence[_Pending], *, split: bool
    ) -> Tuple[List[Dict[str, Any]], List[_Slice]]:
        """Group items and stack their draw matrices into worker tasks.

        ``split=True`` halves a lone multi-row task so the supervised
        executor's pool path (which needs >= 2 pending chunks) engages;
        the kernels are row-independent, so the split is invisible in
        the results.
        """
        groups: Dict[Tuple[Any, ...], List[_Pending]] = {}
        for item in items:
            groups.setdefault(item.request.group_key, []).append(item)
        native = self.breaker.allow_native()
        tasks: List[Dict[str, Any]] = []
        slices: List[_Slice] = []
        for key, members in groups.items():
            algorithm, n, _sampler, lam = key
            draws = np.concatenate(
                [request_draws(m.request) for m in members], axis=0
            )
            method = "auto" if native else _fallback_method(algorithm, n)
            task = {
                "algorithm": algorithm,
                "n": n,
                "alpha": members[0].request.sampler.alpha,
                "lam": lam,
                "draws": draws,
                "method": method,
            }
            task_idx = len(tasks)
            tasks.append(task)
            row = 0
            for member in members:
                stop = row + member.request.n_trials
                slices.append(
                    _Slice(item=member, task_idx=[(task_idx, row, stop)])
                )
                row = stop
        if (
            split
            and native
            and self.workers > 1
            and len(tasks) == 1
            and tasks[0]["draws"].shape[0] >= 2
        ):
            whole = tasks[0]
            rows = whole["draws"].shape[0]
            cut = rows // 2
            lo = dict(whole, draws=whole["draws"][:cut])
            hi = dict(whole, draws=whole["draws"][cut:])
            tasks = [lo, hi]
            for sl in slices:
                _, start, stop = sl.task_idx[0]
                pieces: List[Tuple[int, int, int]] = []
                if start < cut:
                    pieces.append((0, start, min(stop, cut)))
                if stop > cut:
                    pieces.append((1, max(start, cut) - cut, stop - cut))
                sl.task_idx = pieces
        return tasks, slices

    # -- dispatch -------------------------------------------------------

    def _dispatch_blocking(
        self,
        tasks: List[Dict[str, Any]],
        keys: List[str],
        *,
        native: bool,
        timeout: Optional[float],
        chaos: Optional[ChaosSpec],
    ) -> Tuple[List[Optional[np.ndarray]], RunReport]:
        """Runs in a thread: the supervised (or inline degraded) dispatch."""
        rep = RunReport()
        results = execute_chunks(
            tasks,
            _compute_rows,
            keys=keys,
            n_jobs=self.workers if native else 1,
            timeout=timeout,
            retries=self.retries,
            backend=self.backend,
            chaos=chaos,
            report=rep,
            strict=False,
        )
        return results, rep

    def _batch_timeout(self, items: Sequence[_Pending]) -> Optional[float]:
        """Tightest remaining per-request budget, as a kernel-attempt bound."""
        deadlines = [i.deadline_at for i in items if i.deadline_at is not None]
        if not deadlines:
            return None
        remaining = min(deadlines) - time.monotonic()
        # leave headroom for the response path; never pass a non-positive
        # timeout (the asyncio backstop already expired such requests)
        return max(0.05, remaining * 0.8)

    async def run_batch(self, items: Sequence[_Pending]) -> None:
        """Answer every item: one settled future each, success or not."""
        try:
            await self._run_batch(items)
        except Exception as exc:  # engine bug: fail loudly, drop nothing
            self.report.note_error(f"{type(exc).__name__}: {exc}")
            for item in items:
                if not item.future.done():
                    item.future.set_exception(
                        BatchFailedError(f"batch engine error: {exc}")
                    )

    async def _run_batch(self, items: Sequence[_Pending]) -> None:
        self._batch_seq += 1
        batch_id = self._batch_seq
        native = self.breaker.allow_native()
        tasks, slices = self._build(items, split=native)
        keys = [f"b{batch_id}:{i}" for i in range(len(tasks))]
        chaos = None
        if self.chaos is not None and batch_id <= self.chaos_batches:
            chaos = self.chaos
            self.report.chaos_batches += 1
        timeout = self._batch_timeout(items)

        self.report.batches += 1
        self.report.batch_requests += len(items)
        self.report.batch_rows += sum(t["draws"].shape[0] for t in tasks)
        self.report.max_batch_requests = max(
            self.report.max_batch_requests, len(items)
        )

        loop = asyncio.get_running_loop()
        primary = loop.run_in_executor(
            None,
            lambda: self._dispatch_blocking(
                tasks, keys, native=native, timeout=timeout, chaos=chaos
            ),
        )

        winner: Optional[Tuple[List[Optional[np.ndarray]], RunReport]] = None
        degraded = not native
        dispatch_error: Optional[BaseException] = None
        hedged = False
        if native and self.hedge_after_s is not None:
            done, _ = await asyncio.wait({primary}, timeout=self.hedge_after_s)
            if not done:
                # straggler: duplicate the work on the clean inline path;
                # determinism makes first-wins safe
                hedged = True
                self.report.hedges += 1
                hedge_tasks = [
                    dict(t, method=_fallback_method(t["algorithm"], t["n"]))
                    for t in tasks
                ]
                hedge = loop.run_in_executor(
                    None,
                    lambda: self._dispatch_blocking(
                        hedge_tasks,
                        [f"{k}:hedge" for k in keys],
                        native=False,
                        timeout=None,
                        chaos=None,
                    ),
                )
                done, _ = await asyncio.wait(
                    {primary, hedge}, return_when=asyncio.FIRST_COMPLETED
                )
                if primary in done:
                    self._absorb_later(hedge, native=False)
                else:
                    self.report.hedge_wins += 1
                    degraded = True
                    self._absorb_later(primary, native=True)
                    primary = hedge
        try:
            winner = await primary
        except Exception as exc:
            dispatch_error = exc
            self.report.note_error(f"{type(exc).__name__}: {exc}")

        if winner is None:
            if native and not hedged:
                self._record_breaker(None, failed=True)
            for item in items:
                if not item.future.done():
                    item.future.set_exception(
                        BatchFailedError(f"batch dispatch failed: {dispatch_error}")
                    )
            return

        results, rep = winner
        if not (hedged and degraded):
            # the winner was the path allow_native() granted; settle the
            # breaker now (a hedged-out primary settles via _absorb_later)
            if native:
                self._record_breaker(rep, failed=self._rep_failed(rep))
        self._merge_exec_report(rep)

        for sl in slices:
            item = sl.item
            if item.future.done():
                continue
            parts: List[np.ndarray] = []
            lost = False
            for task_idx, start, stop in sl.task_idx:
                chunk = results[task_idx]
                if chunk is None:
                    lost = True
                    break
                parts.append(chunk[start:stop])
            if lost:
                item.future.set_exception(
                    BatchFailedError(
                        "batch quarantined after exhausting retries"
                    )
                )
                continue
            ratios = parts[0] if len(parts) == 1 else np.concatenate(parts)
            item.future.set_result(
                response_payload(
                    item.request,
                    ratios,
                    degraded=degraded,
                    batch_size=len(items),
                )
            )

    # -- breaker + accounting ------------------------------------------

    @staticmethod
    def _rep_failed(rep: RunReport) -> bool:
        return bool(rep.pool_rebuilds or rep.quarantined or rep.timeouts)

    def _record_breaker(self, rep: Optional[RunReport], *, failed: bool) -> None:
        before = self.breaker.trips
        if failed:
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
        self.report.breaker_trips = self.breaker.trips
        self.report.breaker_recoveries = self.breaker.recoveries
        if self.breaker.trips > before:
            self.report.note_error(
                "circuit breaker opened: serving degraded (NumPy, inline)"
            )

    def _merge_exec_report(self, rep: RunReport) -> None:
        self.report.worker_deaths += rep.pool_rebuilds
        self.report.exec_retries += rep.retries
        self.report.exec_timeouts += rep.timeouts
        if rep.quarantined:
            self.report.quarantined_batches += 1

    def _absorb_later(self, pending: "asyncio.Future[Any]", *, native: bool) -> None:
        """Consume a losing dispatch in the background.

        Threads cannot be cancelled; the loser runs to completion and its
        outcome still feeds the breaker (a primary that eventually shows
        pool rebuilds is a real failure signal even though a hedge
        answered the requests).
        """

        async def absorb() -> None:
            try:
                _results, rep = await pending
            except Exception as exc:
                if native:
                    self._record_breaker(None, failed=True)
                self.report.note_error(f"{type(exc).__name__}: {exc}")
                return
            self._merge_exec_report(rep)
            if native:
                self._record_breaker(rep, failed=self._rep_failed(rep))

        task = asyncio.get_running_loop().create_task(absorb())
        self._background.add(task)
        task.add_done_callback(self._background.discard)

    async def drain_background(self) -> None:
        """Wait for losing hedge/primary dispatches to finish (for drain)."""
        while self._background:
            await asyncio.gather(*list(self._background), return_exceptions=True)


class MicroBatcher:
    """Collects admitted requests into window-bounded batches."""

    def __init__(
        self,
        engine: BatchEngine,
        *,
        window_s: float = 0.002,
        max_requests: int = 64,
    ) -> None:
        if window_s < 0:
            raise ValueError(f"window_s must be >= 0, got {window_s}")
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        self.engine = engine
        self.window_s = window_s
        self.max_requests = max_requests
        self._queue: List[_Pending] = []
        self._flusher: Optional["asyncio.Task[None]"] = None
        self._inflight: Set["asyncio.Task[None]"] = set()

    def submit(self, request: PartitionRequest) -> "asyncio.Future[Dict[str, Any]]":
        """Enqueue one request; the returned future settles exactly once."""
        loop = asyncio.get_running_loop()
        deadline_at = (
            time.monotonic() + request.deadline_s
            if request.deadline_s is not None
            else None
        )
        item = _Pending(
            request=request, future=loop.create_future(), deadline_at=deadline_at
        )
        self._queue.append(item)
        if self._flusher is None or self._flusher.done():
            self._flusher = loop.create_task(self._flush_after_window())
        return item.future

    async def _flush_after_window(self) -> None:
        if self.window_s > 0:
            await asyncio.sleep(self.window_s)
        loop = asyncio.get_running_loop()
        while self._queue:
            batch = self._queue[: self.max_requests]
            del self._queue[: len(batch)]
            task = loop.create_task(self.engine.run_batch(batch))
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def drain(self) -> None:
        """Flush the queue and wait for every batch (and loser) to finish."""
        while self._queue or self._inflight or (
            self._flusher is not None and not self._flusher.done()
        ):
            if self._flusher is not None and not self._flusher.done():
                await self._flusher
            if self._queue:
                # drain must not wait out the window; flush immediately
                window, self.window_s = self.window_s, 0.0
                try:
                    await self._flush_after_window()
                finally:
                    self.window_s = window
            if self._inflight:
                await asyncio.gather(
                    *list(self._inflight), return_exceptions=True
                )
        await self.engine.drain_background()
