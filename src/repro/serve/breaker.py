"""Circuit breaker guarding the native kernel + worker-pool path.

Repeated kernel-worker deaths (pool rebuilds, quarantined batches,
dispatch exceptions) trip the breaker: the engine then serves from the
*degraded* path -- NumPy reference kernels, inline in the server
process, no pool to kill -- which is slower but produces bit-identical
ratios (the repo's kernel-parity tests are the warrant).  After a reset
window the breaker half-opens and lets exactly one probe batch through
the native path; a healthy probe closes the breaker, a failed one
re-opens it with the window restarted.

The clock is injected so unit tests drive state transitions without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Classic 3-state breaker; event-loop-confined, no locks."""

    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_after_s: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_after_s <= 0:
            raise ValueError(f"reset_after_s must be positive, got {reset_after_s}")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock if clock is not None else time.monotonic
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self.recoveries = 0
        self._opened_at = 0.0
        self._probe_out = False

    def allow_native(self) -> bool:
        """May the next batch take the native + worker-pool path?

        In ``half_open`` this hands out a single probe permit; the
        caller must answer with :meth:`record_success` or
        :meth:`record_failure` (the engine does so for every dispatch).
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self.reset_after_s:
                self.state = HALF_OPEN
                self._probe_out = False
            else:
                return False
        # half-open: one probe at a time
        if self._probe_out:
            return False
        self._probe_out = True
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self._probe_out = False
            self.recoveries += 1

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            self._trip()
        elif self.state == CLOSED and (
            self.consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self._opened_at = self._clock()
        self._probe_out = False
        self.trips += 1
