"""Experiment E4 -- non-power-of-two processor counts.

Paper, Section 4: "We chose the number of processors as consecutive powers
of 2 to explore the asymptotic behavior of our load balancing algorithms
(experiments with values of N that were not powers of 2 gave very similar
results)."

The study pairs each power of two with nearby non-powers (2^k - 1,
2^k + 1, and a few round numbers) and reports the relative difference of
the mean ratio, which should be small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import StochasticConfig
from repro.experiments.runner import SweepResult, run_sweep
from repro.problems.samplers import AlphaSampler, UniformAlpha

__all__ = ["NonPow2Result", "run_nonpow2_study", "render_nonpow2_study"]


@dataclass(frozen=True)
class NonPow2Result:
    sweep: SweepResult
    pairs: Tuple[Tuple[int, int], ...]  # (power-of-two N, nearby N)

    def relative_difference(self, algorithm: str, pair: Tuple[int, int]) -> float:
        """|mean(N') - mean(N)| / mean(N) for a (N, N') pair."""
        a = self.sweep.get(algorithm, pair[0]).sample.mean
        b = self.sweep.get(algorithm, pair[1]).sample.mean
        return abs(b - a) / a

    def max_relative_difference(self, algorithm: str) -> float:
        return max(self.relative_difference(algorithm, p) for p in self.pairs)


def run_nonpow2_study(
    *,
    exponents: Sequence[int] = (6, 8, 10),
    sampler: Optional[AlphaSampler] = None,
    algorithms: Sequence[str] = ("hf", "bahf", "ba"),
    n_trials: int = 500,
    seed: int = 20260706,
    n_jobs: int = 1,
) -> NonPow2Result:
    """Compare each 2^k against 2^k - 1 and 2^k + 1 (plus 1000 vs 1024)."""
    pairs: List[Tuple[int, int]] = []
    ns: List[int] = []
    for k in exponents:
        n = 2**k
        for other in (n - 1, n + 1):
            pairs.append((n, other))
        ns.extend([n - 1, n, n + 1])
    if 1024 in ns:
        pairs.append((1024, 1000))
        ns.append(1000)
    config = StochasticConfig(
        sampler=sampler or UniformAlpha(0.1, 0.5),
        n_values=tuple(sorted(set(ns))),
        algorithms=tuple(algorithms),
        n_trials=n_trials,
        seed=seed,
        n_jobs=n_jobs,
    )
    return NonPow2Result(sweep=run_sweep(config), pairs=tuple(pairs))


def render_nonpow2_study(result: NonPow2Result) -> str:
    lines = [
        "Non-power-of-two study -- relative difference of the mean ratio",
        "",
    ]
    for algo in result.sweep.algorithms():
        lines.append(f"{algo}:")
        for pair in result.pairs:
            a = result.sweep.get(algo, pair[0]).sample.mean
            b = result.sweep.get(algo, pair[1]).sample.mean
            diff = result.relative_difference(algo, pair)
            lines.append(
                f"  N={pair[0]:5d} mean={a:6.3f}  vs  N={pair[1]:5d} "
                f"mean={b:6.3f}  (diff {100 * diff:.2f}%)"
            )
        lines.append(
            f"  max difference: {100 * result.max_relative_difference(algo):.2f}%"
        )
        lines.append("")
    return "\n".join(lines)
