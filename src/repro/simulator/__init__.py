"""Discrete-event simulation of the paper's parallel machine model.

Section 3 analyses the algorithms on an abstract message-passing machine:
unit-time bisections and subproblem sends, ``O(log N)`` global operations.
This package provides that machine (:class:`Machine`, :class:`MachineConfig`),
a deterministic event engine (:class:`Simulator`), the free-processor
management schemes of Section 3.4 (:mod:`repro.simulator.freeproc`) and
simulated executions of all four algorithms with full timing / message /
collective accounting:

* :func:`simulate_hf`   -- sequential baseline (``Θ(N)`` makespan),
* :func:`simulate_ba`   -- communication-free recursion (``O(log N)``),
* :func:`simulate_bahf` -- BA + local HF below the λ/α threshold,
* :func:`simulate_phf`  -- parallel HF (two phase-1 strategies).
"""

from repro.simulator.engine import SimulationError, Simulator
from repro.simulator.collectives import (
    CollectiveModel,
    ConstantCost,
    LinearCost,
    LogCost,
)
from repro.simulator.topology import (
    CompleteTopology,
    HypercubeTopology,
    Mesh2DTopology,
    RingTopology,
    Topology,
)
from repro.simulator.machine import Machine, MachineConfig, MachineEvent
from repro.simulator.freeproc import (
    CentralManager,
    NumberedFreePool,
    RandomStealManager,
    RangeManager,
)
from repro.simulator.trace import SimulationResult
from repro.simulator.gantt import gantt_rows, render_gantt
from repro.simulator.hf_sim import simulate_hf
from repro.simulator.ba_sim import simulate_ba, simulate_ba_prime
from repro.simulator.bahf_sim import simulate_bahf
from repro.simulator.phf_sim import simulate_phf
from repro.simulator.fastpath import (
    FastpathResult,
    FastpathUnsupported,
    fastpath_counters,
    fastpath_supported,
)

__all__ = [
    "SimulationError",
    "Simulator",
    "CollectiveModel",
    "ConstantCost",
    "LinearCost",
    "LogCost",
    "Topology",
    "CompleteTopology",
    "HypercubeTopology",
    "Mesh2DTopology",
    "RingTopology",
    "Machine",
    "MachineConfig",
    "MachineEvent",
    "CentralManager",
    "NumberedFreePool",
    "RandomStealManager",
    "RangeManager",
    "SimulationResult",
    "gantt_rows",
    "render_gantt",
    "simulate_hf",
    "simulate_ba",
    "simulate_ba_prime",
    "simulate_bahf",
    "simulate_phf",
    "FastpathResult",
    "FastpathUnsupported",
    "fastpath_counters",
    "fastpath_supported",
]
