"""Batched (many-trials-at-once) Monte-Carlo kernels -- Section 4 at scale.

The scalar fast paths (:func:`repro.core.hf.hf_final_weights`,
:func:`repro.core.ba.ba_final_weights`,
:func:`repro.core.bahf.bahf_final_weights`) spend almost all of their time
in per-bisection Python bookkeeping: a ``heapq`` op or an explicit-stack
push costs microseconds of interpreter overhead for nanoseconds of float
arithmetic.  The paper's simulation study needs 1000 trials per
(algorithm, N) cell up to N = 2^16, so this module re-formulates all
three kernels to advance *every trial of a batch* by one bisection (or
one recursion level) per vectorized NumPy step:

* :func:`hf_final_weights_batch` -- HF over a ``(n_trials, N)`` weight
  table.  Two interchangeable formulations: an **argmax frontier** (one
  row-wise ``argmax`` per bisection; O(N) elements scanned per trial per
  step, unbeatable constants for small N) and an **array heap** (a binary
  max-heap per trial laid out in the rows of one array, with masked
  vectorized sift-down/sift-up across trials; O(log N) vector steps per
  bisection, the winner for large N).  Both produce the same final-weight
  multiset as the scalar ``heapq`` loop -- equal-weight ties may pop in a
  different order, but swapping the pop order of equal weights provably
  leaves the resulting weight multiset unchanged.

* :func:`ba_final_weights_batch` / :func:`bahf_final_weights_batch` --
  level-order frontier vectorization of the BA recursion: each step
  splits *all* active ``(weight, n)`` nodes of all trials at once.  The
  scalar paths consume one α̂ draw per bisection in DFS pre-order; a node
  that owns ``n`` processors consumes exactly ``n - 1`` draws in its
  subtree, so the DFS draw index of every node can be computed
  *analytically* during the level-order sweep (root at offset ``o`` uses
  draw ``o``; its heavier child starts at ``o + 1``, the lighter one at
  ``o + n1``).  Every leaf weight is therefore bit-identical to the
  scalar recursion fed by the same draw stream.

All kernels take the draws as an explicit ``(n_trials, >= N-1)`` matrix
(see :meth:`repro.problems.samplers.AlphaSampler.sample_trial_matrix`),
which keeps the per-trial RNG derivation -- and hence reproducibility
across chunked/parallel schedules -- outside the kernel.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.core import _native
from repro.core.bahf import bahf_threshold

__all__ = [
    "hf_final_weights_batch",
    "ba_final_weights_batch",
    "bahf_final_weights_batch",
]

#: Below this N the argmax frontier beats the array heap (fewer, larger
#: NumPy calls); above it the heap's O(log N) vector steps win.
HEAP_MIN_N = 128


# ----------------------------------------------------------------------
# Input validation helpers
# ----------------------------------------------------------------------


def _as_draw_matrix(alpha_draws, n_needed: int) -> np.ndarray:
    draws = np.asarray(alpha_draws, dtype=np.float64)
    if draws.ndim != 2:
        raise ValueError(
            f"alpha_draws must be 2-D (n_trials, n_draws), got shape {draws.shape}"
        )
    if draws.shape[1] < n_needed:
        raise ValueError(
            f"need {n_needed} alpha draws per trial, got {draws.shape[1]}"
        )
    return draws


def _as_initial_weights(initial_weight, n_trials: int) -> np.ndarray:
    w0 = np.asarray(initial_weight, dtype=np.float64)
    if w0.ndim == 0:
        w0 = np.full(n_trials, float(w0))
    if w0.shape != (n_trials,):
        raise ValueError(
            f"initial_weight must be scalar or shape ({n_trials},), got {w0.shape}"
        )
    if np.any(w0 <= 0):
        raise ValueError("initial weights must be positive")
    return w0


# ----------------------------------------------------------------------
# HF: argmax frontier
# ----------------------------------------------------------------------


def _hf_frontier(w0: np.ndarray, n: int, draws: np.ndarray) -> np.ndarray:
    """One row-wise argmax per bisection over the active weight prefix."""
    n_trials = w0.shape[0]
    weights = np.empty((n_trials, n), dtype=np.float64)
    weights[:, 0] = w0
    rows = np.arange(n_trials)
    for k in range(n - 1):
        heaviest = np.argmax(weights[:, : k + 1], axis=1)
        w = weights[rows, heaviest]
        a = draws[:, k]
        weights[rows, heaviest] = a * w
        weights[:, k + 1] = (1.0 - a) * w
    return weights


# ----------------------------------------------------------------------
# HF: array heap (one binary max-heap per row, sifted across trials)
# ----------------------------------------------------------------------


#: Heap arity.  A wide heap trades a few more comparisons per level for a
#: much shallower sift path; with one fancy-indexing round per *level*
#: (not per comparison), shallow wins decisively in NumPy.
_HEAP_ARITY = 16


def _sift_up_uniform(heap_t: np.ndarray, pos: int) -> None:
    """Bubble the element just written at slot ``pos`` up, in all trials.

    ``heap_t`` is slot-major ``(slots, trials)``: slot ``pos`` is one
    contiguous row.  Because every trial inserts at the same slot, the
    comparison chain uses *uniform* slot indices -- only the set of
    trials still moving shrinks -- so each level is a handful of
    contiguous vector ops, and the common case (the new element stays at
    the bottom) costs a single compare.
    """
    child = pos
    rows: Optional[np.ndarray] = None
    while child > 0:
        parent = (child - 1) // _HEAP_ARITY
        if rows is None:
            child_w = heap_t[child]
            parent_w = heap_t[parent]
            swap = child_w > parent_w
            if not swap.any():
                return
            rows = np.nonzero(swap)[0]
            moved = child_w[rows]
            heap_t[child, rows] = parent_w[rows]
            heap_t[parent, rows] = moved
        else:
            child_w = heap_t[child, rows]
            parent_w = heap_t[parent, rows]
            swap = child_w > parent_w
            if not swap.any():
                return
            rows = rows[swap]
            heap_t[child, rows] = parent_w[swap]
            heap_t[parent, rows] = child_w[swap]
        child = parent


def _sift_down_from_root(
    heap_t: np.ndarray, rows: np.ndarray, values: np.ndarray, size: int
) -> None:
    """Place ``values`` (one per row) dropped into the root slot.

    Carries the sifted value instead of re-reading it, descends per-trial
    paths level by level, and retires trials as their value settles; the
    active set shrinks fast because the dropped value (the big child of a
    recent maximum) ranks high.
    """
    if size < 2:
        heap_t[0, rows] = values
        return
    idx = np.zeros(rows.size, dtype=np.intp)
    offsets = np.arange(_HEAP_ARITY, dtype=np.intp)
    while True:
        base = idx * _HEAP_ARITY + 1
        cols = base[:, None] + offsets
        in_range = cols < size
        children = heap_t[np.minimum(cols, size - 1), rows[:, None]]
        children = np.where(in_range, children, -np.inf)
        best = np.argmax(children, axis=1)
        pick = np.arange(rows.size), best
        child_w = children[pick]
        move = child_w > values
        settle = ~move
        if settle.any():
            heap_t[idx[settle], rows[settle]] = values[settle]
        if not move.any():
            return
        rows, values = rows[move], values[move]
        child_slot = cols[pick][move]
        heap_t[idx[move], rows] = child_w[move]
        idx = child_slot


def _hf_heap(w0: np.ndarray, n: int, draws: np.ndarray) -> np.ndarray:
    """Hold-back array heap: the running maximum lives outside the heap.

    Each bisection splits ``cur`` (the per-trial maximum) into a big and
    a small child.  The small child is appended to the heap, where it
    rarely bubbles past the bottom level; the big child either becomes
    the next maximum outright or displaces the heap root and pays one
    (shallow, thanks to the wide arity and its own high rank) sift-down.
    The heap is stored slot-major ``(slots, trials)`` so per-slot
    operations are contiguous across the batch.
    """
    n_trials = w0.shape[0]
    heap_t = np.empty((n, n_trials), dtype=np.float64)
    cur = w0.copy()
    all_rows = np.arange(n_trials)
    draws_t = np.ascontiguousarray(draws[:, : n - 1].T)
    # Samplers guarantee alpha-hat <= 1/2, making the (1-a) child the big
    # one; fall back to explicit min/max for out-of-convention draws.
    ordered = bool(np.all(draws_t <= 0.5))
    for k in range(n - 1):
        a = draws_t[k]
        c1 = a * cur
        c2 = (1.0 - a) * cur
        if ordered:
            big, small = c2, c1
        else:
            big, small = np.maximum(c1, c2), np.minimum(c1, c2)
        heap_t[k] = small
        if k > 0:
            _sift_up_uniform(heap_t, k)
        root = heap_t[0]
        demote = big < root
        cur = np.where(demote, root, big)
        if demote.any():
            rows = all_rows[demote]
            _sift_down_from_root(heap_t, rows, big[demote], k + 1)
    heap_t[n - 1] = cur
    return heap_t.T


def hf_final_weights_batch(
    initial_weight: Union[float, np.ndarray],
    n_processors: int,
    alpha_draws,
    *,
    method: str = "auto",
    n_threads: Optional[int] = None,
) -> np.ndarray:
    """Batched :func:`~repro.core.hf.hf_final_weights`.

    ``alpha_draws`` is a ``(n_trials, >= n_processors - 1)`` matrix; row
    ``t`` supplies trial ``t``'s i.i.d. draws in the order HF consumes
    them.  ``initial_weight`` may be a scalar (shared) or a per-trial
    vector.  Returns the ``(n_trials, n_processors)`` final weights
    (per-row order unspecified; the multiset per row matches the scalar
    path for the same draws).

    ``method`` is ``"frontier"``, ``"heap"``, ``"native"`` or ``"auto"``.
    ``"auto"`` uses the frontier for ``n_processors < HEAP_MIN_N`` and the
    compiled C heap above (falling back to the NumPy heap when no system
    compiler is available -- see :mod:`repro.core._native`); asking for
    ``"native"`` explicitly raises if the compiled kernel is unavailable.
    ``n_threads`` shards the native kernel's trials across in-kernel
    threads (``None`` defers to ``REPRO_NATIVE_THREADS`` / auto); results
    are bit-identical for every count, and the NumPy paths ignore it.
    """
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")
    draws = _as_draw_matrix(alpha_draws, n_processors - 1)
    w0 = _as_initial_weights(initial_weight, draws.shape[0])
    if n_processors == 1:
        return w0[:, None].copy()
    if method == "auto":
        out = _native.hf_batch_native(w0, n_processors, draws, n_threads)
        if out is not None:
            return out
        method = "frontier" if n_processors < HEAP_MIN_N else "heap"
    if method == "frontier":
        return _hf_frontier(w0, n_processors, draws)
    if method == "heap":
        return _hf_heap(w0, n_processors, draws)
    if method == "native":
        out = _native.hf_batch_native(w0, n_processors, draws, n_threads)
        if out is None:
            raise RuntimeError(
                "compiled HF kernel unavailable (no system C compiler, the "
                "build failed, or REPRO_NO_NATIVE is set)"
            )
        return out
    raise ValueError(
        f"unknown method {method!r} (use 'auto', 'frontier', 'heap' or 'native')"
    )


# ----------------------------------------------------------------------
# BA / BA-HF: level-order frontier
# ----------------------------------------------------------------------


def _ba_split_vec(
    w1: np.ndarray, w2: np.ndarray, n: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`repro.core.ba.ba_split` (same float ops)."""
    eta = n * w1 / (w1 + w2)
    lo = np.clip(np.floor(eta), 1, n - 1).astype(np.int64)
    hi = np.clip(np.ceil(eta), 1, n - 1).astype(np.int64)
    cost_lo = np.maximum(w1 / lo, w2 / (n - lo))
    cost_hi = np.maximum(w1 / hi, w2 / (n - hi))
    n1 = np.where(cost_lo <= cost_hi, lo, hi)
    return n1, n - n1


def _split_level(
    w: np.ndarray, n: np.ndarray, off: np.ndarray, a: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split every node of a frontier level; returns child (w, n, off) pairs.

    Children are ordered heavier-first per node, matching the scalar DFS
    which pushes the lighter child deeper into the stack.  The heavier
    child inherits draw offset ``off + 1``, the lighter ``off + n1``
    (its subtree starts after the heavier sibling's ``n1 - 1`` draws).
    """
    w2 = a * w
    w1 = w - w2
    flipped = w1 < w2
    if flipped.any():
        w1, w2 = np.where(flipped, w2, w1), np.where(flipped, w1, w2)
    n1, n2 = _ba_split_vec(w1, w2, n)
    return w1, w2, n1, n2, off + 1


def _rows_to_matrix(
    leaf_trials: List[np.ndarray],
    leaf_weights: List[np.ndarray],
    n_trials: int,
    n_processors: int,
) -> np.ndarray:
    """Regroup flat (trial, weight) leaf streams into a (T, N) matrix.

    The sort key is only the trial id, so it is cast to the narrowest
    integer type that fits: NumPy's stable sort is a radix sort for
    <= 16-bit integers, which turns the regrouping from the dominant cost
    of the level-order kernels into noise.
    """
    trials = np.concatenate(leaf_trials)
    weights = np.concatenate(leaf_weights)
    if n_trials <= np.iinfo(np.int16).max:
        trials = trials.astype(np.int16)
    order = np.argsort(trials, kind="stable")
    return weights[order].reshape(n_trials, n_processors)


def ba_final_weights_batch(
    initial_weight: Union[float, np.ndarray],
    n_processors: int,
    alpha_draws,
    *,
    method: str = "auto",
    n_threads: Optional[int] = None,
) -> np.ndarray:
    """Batched :func:`~repro.core.ba.ba_final_weights` (no skip threshold).

    Row ``t`` of ``alpha_draws`` supplies the draws the scalar recursion
    would consume in DFS pre-order; exactly ``n_processors - 1`` are used
    per trial, and every leaf weight is bit-identical to the scalar path.
    Returns the ``(n_trials, n_processors)`` final weights (per-row order
    unspecified).

    ``method`` is ``"frontier"``, ``"native"`` or ``"auto"``.  ``"auto"``
    prefers the compiled C recursion (see :mod:`repro.core._native`) and
    falls back to the NumPy level-order frontier when no system compiler
    is available; asking for ``"native"`` explicitly raises if the
    compiled kernel is unavailable.  ``n_threads`` is the native kernel's
    in-kernel thread count (bit-identical for every value; ignored by the
    NumPy path).
    """
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")
    if method not in ("auto", "frontier", "native"):
        raise ValueError(
            f"unknown method {method!r} (use 'auto', 'frontier' or 'native')"
        )
    draws = _as_draw_matrix(alpha_draws, n_processors - 1)
    n_trials = draws.shape[0]
    w0 = _as_initial_weights(initial_weight, n_trials)
    if n_processors == 1:
        return w0[:, None].copy()
    if method in ("auto", "native"):
        out = _native.ba_batch_native(w0, n_processors, draws, n_threads)
        if out is not None:
            return out
        if method == "native":
            raise RuntimeError(
                "compiled BA kernel unavailable (no system C compiler, the "
                "build failed, or REPRO_NO_NATIVE is set)"
            )

    leaf_trials: List[np.ndarray] = []
    leaf_weights: List[np.ndarray] = []
    trial = np.arange(n_trials, dtype=np.intp)
    w = w0.copy()
    n = np.full(n_trials, n_processors, dtype=np.int64)
    off = np.zeros(n_trials, dtype=np.int64)
    while trial.size:
        done = n == 1
        if done.any():
            leaf_trials.append(trial[done])
            leaf_weights.append(w[done])
            active = ~done
            trial, w, n, off = trial[active], w[active], n[active], off[active]
            if trial.size == 0:
                break
        a = draws[trial, off]
        w1, w2, n1, n2, off1 = _split_level(w, n, off, a)
        trial = np.concatenate([trial, trial])
        w = np.concatenate([w1, w2])
        n = np.concatenate([n1, n2])
        off = np.concatenate([off1, off + n1])
    return _rows_to_matrix(leaf_trials, leaf_weights, n_trials, n_processors)


def bahf_final_weights_batch(
    initial_weight: Union[float, np.ndarray],
    n_processors: int,
    alpha_draws,
    *,
    alpha: float,
    lam: float = 1.0,
    method: str = "auto",
    hf_method: str = "auto",
    n_threads: Optional[int] = None,
) -> np.ndarray:
    """Batched :func:`~repro.core.bahf.bahf_final_weights`.

    BA-phase nodes are expanded level by level exactly as in
    :func:`ba_final_weights_batch`; nodes that fall below the switch-over
    threshold ``λ/α + 1`` become HF sub-jobs, which are grouped by
    processor count and finished with :func:`hf_final_weights_batch` on
    their draw slices (``draws[t, off : off + n - 1]``, matching the
    scalar DFS consumption order).

    ``method`` is ``"frontier"``, ``"native"`` or ``"auto"``.  ``"auto"``
    prefers the compiled C kernel (which runs both phases in one pass --
    see :mod:`repro.core._native`) and falls back to the NumPy frontier
    when no system compiler is available; asking for ``"native"``
    explicitly raises if the compiled kernel is unavailable.
    ``hf_method`` selects the kernel for the NumPy path's HF sub-jobs.
    ``n_threads`` is the native kernel's in-kernel thread count
    (bit-identical for every value; forwarded to native HF sub-jobs on
    the NumPy path).
    """
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")
    if method not in ("auto", "frontier", "native"):
        raise ValueError(
            f"unknown method {method!r} (use 'auto', 'frontier' or 'native')"
        )
    threshold = bahf_threshold(alpha, lam)
    draws = _as_draw_matrix(alpha_draws, n_processors - 1)
    n_trials = draws.shape[0]
    w0 = _as_initial_weights(initial_weight, n_trials)
    if n_processors == 1:
        return w0[:, None].copy()
    if method in ("auto", "native"):
        out = _native.bahf_batch_native(
            w0, n_processors, draws, threshold, n_threads
        )
        if out is not None:
            return out
        if method == "native":
            raise RuntimeError(
                "compiled BA-HF kernel unavailable (no system C compiler, the "
                "build failed, or REPRO_NO_NATIVE is set)"
            )

    leaf_trials: List[np.ndarray] = []
    leaf_weights: List[np.ndarray] = []
    hf_trials: List[np.ndarray] = []
    hf_w: List[np.ndarray] = []
    hf_n: List[np.ndarray] = []
    hf_off: List[np.ndarray] = []

    trial = np.arange(n_trials, dtype=np.intp)
    w = w0.copy()
    n = np.full(n_trials, n_processors, dtype=np.int64)
    off = np.zeros(n_trials, dtype=np.int64)
    while trial.size:
        below = n < threshold
        if below.any():
            single = below & (n == 1)
            if single.any():
                leaf_trials.append(trial[single])
                leaf_weights.append(w[single])
            multi = below & (n > 1)
            if multi.any():
                hf_trials.append(trial[multi])
                hf_w.append(w[multi])
                hf_n.append(n[multi])
                hf_off.append(off[multi])
            active = ~below
            trial, w, n, off = trial[active], w[active], n[active], off[active]
            if trial.size == 0:
                break
        a = draws[trial, off]
        w1, w2, n1, n2, off1 = _split_level(w, n, off, a)
        trial = np.concatenate([trial, trial])
        w = np.concatenate([w1, w2])
        n = np.concatenate([n1, n2])
        off = np.concatenate([off1, off + n1])

    if hf_trials:
        job_trial = np.concatenate(hf_trials)
        job_w = np.concatenate(hf_w)
        job_n = np.concatenate(hf_n)
        job_off = np.concatenate(hf_off)
        for sub_n in np.unique(job_n):
            group = job_n == sub_n
            g_trial = job_trial[group]
            g_off = job_off[group]
            g_draws = draws[g_trial[:, None], g_off[:, None] + np.arange(sub_n - 1)]
            sub = hf_final_weights_batch(
                job_w[group], int(sub_n), g_draws,
                method=hf_method, n_threads=n_threads,
            )
            leaf_trials.append(np.repeat(g_trial, int(sub_n)))
            leaf_weights.append(sub.ravel())
    return _rows_to_matrix(leaf_trials, leaf_weights, n_trials, n_processors)
