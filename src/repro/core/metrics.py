"""Load-balance metrics over piece weights.

The paper's single quality measure is the ratio of the maximum piece weight
to the ideal weight ``w(p)/N``; this module provides it (vectorised, for the
Monte-Carlo harness) plus the auxiliary statistics used in Section 4
(min/avg/max over trials, sample variance) and a few standard imbalance
metrics useful to downstream users.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ratio",
    "imbalance",
    "normalized_std",
    "idle_fraction",
    "RatioSample",
    "RatioAccumulator",
    "summarize_ratios",
]


def _as_weights(weights: Sequence[float]) -> np.ndarray:
    arr = np.asarray(weights, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("weights must be a non-empty 1-D sequence")
    if np.any(arr <= 0):
        raise ValueError("weights must be strictly positive")
    return arr


def ratio(weights: Sequence[float], n_processors: int | None = None) -> float:
    """``max_i w_i / (Σ w_i / N)`` -- the paper's quality measure.

    ``n_processors`` defaults to ``len(weights)`` (no idle processors).
    A value of 1.0 is perfect balance; ``N`` is the worst possible.
    """
    arr = _as_weights(weights)
    n = len(arr) if n_processors is None else int(n_processors)
    if n < len(arr):
        raise ValueError(f"{len(arr)} pieces for {n} processors")
    return float(arr.max() / (arr.sum() / n))


def imbalance(weights: Sequence[float]) -> float:
    """``max/mean - 1``: 0 for perfect balance (= ratio - 1, no idles)."""
    return ratio(weights) - 1.0


def normalized_std(weights: Sequence[float]) -> float:
    """Coefficient of variation of the piece weights (population std/mean)."""
    arr = _as_weights(weights)
    return float(arr.std() / arr.mean())


def idle_fraction(weights: Sequence[float], n_processors: int) -> float:
    """Fraction of processors left without a piece."""
    arr = _as_weights(weights)
    if n_processors < len(arr):
        raise ValueError(f"{len(arr)} pieces for {n_processors} processors")
    return (n_processors - len(arr)) / n_processors


@dataclass(frozen=True)
class RatioSample:
    """Summary statistics of observed ratios over repeated trials.

    Matches the columns of the paper's Table 1: min / avg / max, plus the
    sample variance the paper discusses in the text ("the sample variance
    was very small in all cases ...").
    """

    n_trials: int
    minimum: float
    mean: float
    maximum: float
    variance: float
    std: float

    def as_dict(self) -> dict:
        return {
            "n_trials": self.n_trials,
            "min": self.minimum,
            "avg": self.mean,
            "max": self.maximum,
            "var": self.variance,
            "std": self.std,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"min={self.minimum:.4f} avg={self.mean:.4f} "
            f"max={self.maximum:.4f} std={self.std:.4f} (n={self.n_trials})"
        )


@dataclass
class RatioAccumulator:
    """Mergeable streaming summary of trial ratios (Welford / Chan).

    Lets chunked sweep workers summarise their own trials and ship a few
    floats to the parent instead of the full ratio arrays -- paper-scale
    sweeps (1000 trials x N up to 2^20 x many cells) never materialise
    every per-trial array in one process.  ``update`` folds in a batch of
    ratios; ``merge`` combines two accumulators with Chan et al.'s
    parallel-variance formula.  Merging is deterministic for a fixed
    merge order, so a sweep that fixes its chunk layout gets bit-identical
    statistics for any worker count.
    """

    count: int = 0
    mean: float = 0.0
    m2: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def update(self, ratios: Iterable[float]) -> "RatioAccumulator":
        """Fold a batch of ratios into the running summary."""
        arr = np.asarray(
            ratios if isinstance(ratios, np.ndarray) else list(ratios),
            dtype=np.float64,
        ).ravel()
        if arr.size == 0:
            return self
        if np.any(arr < 1.0 - 1e-12):
            raise ValueError("ratios below 1 are impossible; inputs corrupt")
        batch_mean = float(arr.mean())
        self._combine(
            int(arr.size),
            batch_mean,
            float(((arr - batch_mean) ** 2).sum()),
            float(arr.min()),
            float(arr.max()),
        )
        return self

    def merge(self, other: "RatioAccumulator") -> "RatioAccumulator":
        """Fold another accumulator into this one (in place)."""
        if other.count:
            self._combine(
                other.count, other.mean, other.m2, other.minimum, other.maximum
            )
        return self

    def _combine(
        self, count: int, mean: float, m2: float, minimum: float, maximum: float
    ) -> None:
        if self.count == 0:
            self.count, self.mean, self.m2 = count, mean, m2
            self.minimum, self.maximum = minimum, maximum
            return
        total = self.count + count
        delta = mean - self.mean
        self.m2 = self.m2 + m2 + delta * delta * self.count * count / total
        self.mean = self.mean + delta * count / total
        self.count = total
        self.minimum = min(self.minimum, minimum)
        self.maximum = max(self.maximum, maximum)

    def finalize(self) -> RatioSample:
        """The :class:`RatioSample` of everything accumulated so far."""
        if self.count == 0:
            raise ValueError("need at least one ratio")
        var = self.m2 / (self.count - 1) if self.count > 1 else 0.0
        var = max(var, 0.0)
        return RatioSample(
            n_trials=self.count,
            minimum=self.minimum,
            mean=self.mean,
            maximum=self.maximum,
            variance=var,
            std=var**0.5,
        )


def summarize_ratios(ratios: Iterable[float]) -> RatioSample:
    """Aggregate per-trial ratios into a :class:`RatioSample`.

    Uses the unbiased (ddof=1) sample variance, as is standard for the
    "sample variance" the paper reports; for a single trial the variance
    is reported as 0.
    """
    arr = np.asarray(list(ratios), dtype=np.float64)
    if arr.size == 0:
        raise ValueError("need at least one ratio")
    if np.any(arr < 1.0 - 1e-12):
        raise ValueError("ratios below 1 are impossible; inputs corrupt")
    var = float(arr.var(ddof=1)) if arr.size > 1 else 0.0
    return RatioSample(
        n_trials=int(arr.size),
        minimum=float(arr.min()),
        mean=float(arr.mean()),
        maximum=float(arr.max()),
        variance=var,
        std=var**0.5,
    )
