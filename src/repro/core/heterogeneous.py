"""Extension: load balancing onto processors with different speeds.

The paper assumes identical processors (ideal piece weight ``w(p)/N``).
Real clusters are heterogeneous; the natural generalisation makes the
ideal per-processor load proportional to speed: processor ``i`` with
speed ``s_i`` should receive ``w(p)·s_i/S`` (``S = Σ s_i``), and the
quality measure becomes the *completion-time ratio*

    ratio = max_i (w_i / s_i) / (w(p) / S)

(1.0 = every processor finishes simultaneously).  Two algorithms
generalise directly:

* **Weighted BA** -- Figure 3's recursion with the processor *range*
  replaced by a contiguous run of the speed sequence: a bisection into
  ``(p1, p2)`` picks the cut of the speed run that minimises
  ``max(w1/S1, w2/S2)`` (found by scanning the prefix sums; the cost is
  unimodal in the cut, exactly like Lemma 4's floor/ceil argument).
  Everything that makes BA attractive survives: no global communication,
  range-based processor management.
* **Weighted HF** -- run HF's bisection loop to ``N`` pieces, then match
  pieces to processors by sorted rank (heaviest piece ↔ fastest
  processor), which minimises ``max w_i/s_i`` over all bijections.

With all speeds equal both reduce exactly to the paper's algorithms
(tested).  This module is an extension beyond the paper; DESIGN.md §4
lists it among the ablations/extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.hf import run_hf
from repro.core.problem import BisectableProblem

__all__ = [
    "weighted_ratio",
    "split_speed_run",
    "HeterogeneousPartition",
    "run_ba_heterogeneous",
    "run_hf_heterogeneous",
    "speed_profile",
]


def _check_speeds(speeds: Sequence[float]) -> np.ndarray:
    arr = np.asarray(speeds, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("speeds must be a non-empty 1-D sequence")
    if np.any(arr <= 0):
        raise ValueError("speeds must be strictly positive")
    return arr


def weighted_ratio(weights: Sequence[float], speeds: Sequence[float]) -> float:
    """``max_i (w_i/s_i) / (Σw / Σs)``: completion-time imbalance (≥ 1)."""
    w = np.asarray(weights, dtype=np.float64)
    s = _check_speeds(speeds)
    if w.shape != s.shape:
        raise ValueError(f"{w.size} weights for {s.size} processors")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    ideal = w.sum() / s.sum()
    return float((w / s).max() / ideal)


def split_speed_run(
    w1: float, w2: float, speeds: Sequence[float]
) -> Tuple[int, float]:
    """Best cut of a contiguous speed run for children ``w1 ≥ w2``.

    Returns ``(k, cost)``: the first ``k`` processors serve child 1, the
    rest child 2, minimising ``cost = max(w1/S1(k), w2/S2(k))``; both
    sides get at least one processor.  Generalises
    :func:`repro.core.ba.ba_split` (which it reproduces for unit speeds).
    """
    s = _check_speeds(speeds)
    n = s.size
    if n < 2:
        raise ValueError(f"need at least 2 processors to split, got {n}")
    if w1 < w2 or w2 <= 0:
        raise ValueError(f"need w1 >= w2 > 0, got {w1}, {w2}")
    prefix = np.cumsum(s)
    total = prefix[-1]
    s1 = prefix[:-1]  # S1(k) for k = 1..n-1
    s2 = total - s1
    cost = np.maximum(w1 / s1, w2 / s2)
    k = int(np.argmin(cost)) + 1
    return k, float(cost[k - 1])


@dataclass
class HeterogeneousPartition:
    """Result of a heterogeneous partitioning run."""

    pieces: List[BisectableProblem]
    #: speeds, in processor order; ``pieces[i]`` runs on speed ``speeds[i]``
    speeds: List[float]
    algorithm: str
    total_weight: float
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.pieces) != len(self.speeds):
            raise ValueError(
                f"{len(self.pieces)} pieces for {len(self.speeds)} processors"
            )
        _check_speeds(self.speeds)

    @property
    def weights(self) -> List[float]:
        return [p.weight for p in self.pieces]

    @property
    def ratio(self) -> float:
        """Completion-time ratio (1.0 = all processors finish together)."""
        return weighted_ratio(self.weights, self.speeds)

    def completion_times(self) -> List[float]:
        return [p.weight / s for p, s in zip(self.pieces, self.speeds)]

    def validate(self, *, rel_tol: float = 1e-9) -> None:
        total = sum(self.weights)
        if abs(total - self.total_weight) > rel_tol * self.total_weight * max(
            1, len(self.pieces)
        ):
            raise ValueError("piece weights do not sum to the total")


def run_ba_heterogeneous(
    problem: BisectableProblem,
    speeds: Sequence[float],
) -> HeterogeneousPartition:
    """Weighted BA: recursive bisection over a contiguous speed run.

    Since the machine's processor numbering is arbitrary, the recursion
    internally orders the run by descending speed (fast processors first)
    -- contiguous cuts of a sorted run approximate arbitrary speed-mass
    splits much better than cuts of a randomly-ordered one -- and the
    result is scattered back to the caller's ordering.
    """
    s = _check_speeds(speeds)
    total = problem.weight
    if total <= 0:
        raise ValueError(f"problem weight must be positive, got {total}")

    order = np.argsort(-s, kind="stable")
    sorted_speeds = s[order]

    placed_sorted: List[Optional[BisectableProblem]] = [None] * s.size
    stack: List[Tuple[BisectableProblem, int, int]] = [(problem, 0, s.size)]
    bisections = 0
    while stack:
        q, start, count = stack.pop()
        if count == 1:
            placed_sorted[start] = q
            continue
        q1, q2 = q.bisect()
        bisections += 1
        k, _ = split_speed_run(
            q1.weight, q2.weight, sorted_speeds[start : start + count]
        )
        stack.append((q2, start + k, count - k))
        stack.append((q1, start, k))

    assert all(p is not None for p in placed_sorted)
    placed: List[Optional[BisectableProblem]] = [None] * s.size
    for sorted_pos, original_idx in enumerate(order):
        placed[int(original_idx)] = placed_sorted[sorted_pos]
    return HeterogeneousPartition(
        pieces=list(placed),  # type: ignore[arg-type]
        speeds=list(s),
        algorithm="ba_hetero",
        total_weight=total,
        meta={"bisections": bisections},
    )


def run_hf_heterogeneous(
    problem: BisectableProblem,
    speeds: Sequence[float],
) -> HeterogeneousPartition:
    """Weighted HF: HF's pieces, matched to processors by sorted rank.

    Matching the sorted weights to the sorted speeds minimises
    ``max_i w_i/s_i`` over all bijections (if some ``w_a/s_b`` with
    ``w_a`` large and ``s_b`` slow were forced, swapping towards sorted
    order never increases the maximum).
    """
    s = _check_speeds(speeds)
    partition = run_hf(problem, s.size)
    pieces = partition.pieces
    order_pieces = sorted(range(len(pieces)), key=lambda i: -pieces[i].weight)
    order_speeds = np.argsort(-s, kind="stable")
    placed: List[Optional[BisectableProblem]] = [None] * s.size
    for piece_idx, proc_idx in zip(order_pieces, order_speeds):
        placed[int(proc_idx)] = pieces[piece_idx]
    return HeterogeneousPartition(
        pieces=list(placed),  # type: ignore[arg-type]
        speeds=list(s),
        algorithm="hf_hetero",
        total_weight=problem.weight,
        meta={"bisections": partition.num_bisections},
    )


def speed_profile(
    kind: str,
    n: int,
    *,
    seed: int = 0,
    spread: float = 4.0,
) -> np.ndarray:
    """Named speed profiles for studies.

    ``uniform``: all 1.  ``two_class``: half fast (``spread``), half slow
    (1).  ``powerlaw``: log-uniform in ``[1, spread]``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if spread < 1.0:
        raise ValueError(f"spread must be >= 1, got {spread}")
    if kind == "uniform":
        return np.ones(n)
    if kind == "two_class":
        speeds = np.ones(n)
        speeds[: n // 2] = spread
        return speeds
    if kind == "powerlaw":
        rng = np.random.default_rng(seed)
        return np.exp(rng.uniform(0.0, np.log(spread), size=n))
    raise ValueError(f"unknown profile {kind!r} (uniform/two_class/powerlaw)")
