"""Whole-program analysis context: symbol table + call graph.

The per-file rules (R001-R010) are deliberately syntactic; the
invariants the reproduction's headline claims rest on, however, span
modules and language boundaries -- a seed that stops flowing through
``split_seed`` three calls away, a ctypes prototype that drifts from
the C signature, a published shared-memory block with no release on an
error path.  This module builds the shared substrate those passes run
on:

* a :class:`ModuleInfo` per Python file (AST, import-alias map,
  module-level globals, dotted module name derived from the path);
* a :class:`FunctionInfo` per function/method, keyed by qualified name
  (``repro.experiments.runner._run_chunk``), with the calls made from
  its body (nested defs excluded -- they are functions of their own);
* a project-wide call graph: ``calls_from`` (edges out of a function)
  and ``call_sites`` (every call resolving to a given function);
* companion C sources (``*.c`` under the linted roots) for the FFI
  prototype checker.

Resolution is best-effort and *conservative*: a call that cannot be
resolved to a project function simply produces no edge, so whole-program
rules err on the side of silence, never on inventing reachability.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.lint.engine import (
    build_alias_map,
    iter_python_files,
    suppressed_lines,
)
from repro.lint.findings import Finding
from repro.lint.policy import LintPolicy
from repro.lint.registry import ProjectRule, Rule, all_rules

__all__ = [
    "CallSite",
    "FunctionInfo",
    "ModuleInfo",
    "ProjectContext",
    "build_project",
    "lint_project",
    "lint_project_paths",
    "module_name_for",
    "project_rules",
]

FunctionNode = "ast.FunctionDef | ast.AsyncFunctionDef"

#: Path prefixes stripped when deriving dotted module names, so that
#: ``src/repro/core/hf.py`` and an installed ``repro/core/hf.py`` both
#: name the module ``repro.core.hf``.
_SRC_PREFIXES = ("src/",)


def module_name_for(path: str) -> str:
    """Dotted module name derived from a repo-relative file path.

    ``src/repro/core/hf.py`` -> ``repro.core.hf``;
    ``pkg/__init__.py`` -> ``pkg``.  The mapping only needs to agree
    with how project modules import each other (absolute imports), not
    with ``sys.path`` in general.
    """
    norm = path.replace("\\", "/").lstrip("./")
    for prefix in _SRC_PREFIXES:
        if norm.startswith(prefix):
            norm = norm[len(prefix):]
            break
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    if norm.endswith("/__init__"):
        norm = norm[: -len("/__init__")]
    return norm.replace("/", ".")


@dataclass
class FunctionInfo:
    """One function or method of the project."""

    qualname: str  #: ``module.func`` or ``module.Class.method``
    module: "ModuleInfo"
    node: ast.AST
    #: positionally-bindable parameter names (posonly + args), with any
    #: leading ``self``/``cls`` already stripped
    params: Tuple[str, ...] = ()
    kwonly: Tuple[str, ...] = ()
    #: True when the def sits inside a class body
    is_method: bool = False

    @property
    def name(self) -> str:
        return self.qualname.rpartition(".")[2]


@dataclass(frozen=True)
class CallSite:
    """One call expression resolving to a project function."""

    caller: str  #: qualname of the enclosing function, or ``module:<module>``
    module: "ModuleInfo"
    node: ast.Call

    def bound_arg(self, callee: FunctionInfo, param: str) -> Optional[ast.expr]:
        """The expression this site binds to ``param`` of ``callee``.

        Positional binding uses ``callee.params`` (self already
        stripped, so ``obj.method(x)`` binds ``x`` to the first real
        parameter); keyword binding matches by name.  Returns ``None``
        when the site does not bind the parameter (default applies) or
        uses ``*args``/``**kwargs``.
        """
        for kw in self.node.keywords:
            if kw.arg == param:
                return kw.value
        try:
            index = list(callee.params).index(param)
        except ValueError:
            return None
        args = self.node.args
        if index < len(args) and not any(
            isinstance(a, ast.Starred) for a in args[: index + 1]
        ):
            return args[index]
        return None


@dataclass
class ModuleInfo:
    """Everything the project passes know about one Python module."""

    path: str
    name: str
    source: str
    tree: ast.Module
    lines: Tuple[str, ...]
    aliases: Dict[str, str]
    #: names assigned at module top level (mutable-global candidates)
    module_globals: frozenset = frozenset()
    #: names of top-level functions and classes defined here
    toplevel_defs: frozenset = frozenset()

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


def _body_calls(fn: ast.AST) -> Iterator[ast.Call]:
    """Call expressions in ``fn``'s own body (nested defs excluded)."""

    def visit(node: ast.AST) -> Iterator[ast.Call]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            if isinstance(child, ast.Call):
                yield child
            yield from visit(child)

    yield from visit(fn)


@dataclass
class ProjectContext:
    """The resolved whole-program view the R1xx passes analyse."""

    modules: Dict[str, ModuleInfo] = field(default_factory=dict)  #: by path
    by_name: Dict[str, ModuleInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: caller qualname -> [(call node, resolved callee qualname)]
    calls_from: Dict[str, List[Tuple[ast.Call, str]]] = field(
        default_factory=dict
    )
    #: callee qualname -> [CallSite]
    call_sites: Dict[str, List[CallSite]] = field(default_factory=dict)
    #: C sources found next to the Python tree: path -> text
    c_files: Dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------------

    def resolve_function(
        self, module: ModuleInfo, func_expr: ast.AST
    ) -> Optional[FunctionInfo]:
        """Project function a Name/Attribute expression refers to."""
        dotted = module.resolve(func_expr)
        if dotted is None:
            return None
        hit = self.functions.get(dotted)
        if hit is not None:
            return hit
        return self.functions.get(f"{module.name}.{dotted}")

    def enclosing_function(
        self, module: ModuleInfo, node: ast.AST
    ) -> Optional[FunctionInfo]:
        """Innermost project function whose body contains ``node``."""
        best: Optional[FunctionInfo] = None
        best_span = None
        for info in self.functions.values():
            if info.module is not module:
                continue
            fn = info.node
            start = getattr(fn, "lineno", None)
            end = getattr(fn, "end_lineno", None)
            line = getattr(node, "lineno", None)
            if start is None or end is None or line is None:
                continue
            if start <= line <= end:
                span = end - start
                if best_span is None or span < best_span:
                    best, best_span = info, span
        return best


def _positional_params(fn: ast.AST, *, is_method: bool) -> Tuple[str, ...]:
    args = fn.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    return tuple(names)


def _index_module(project: ProjectContext, info: ModuleInfo) -> None:
    """Register a module's functions and module-level calls."""

    def add_function(node: ast.AST, qualname: str, is_method: bool) -> None:
        project.functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=info,
            node=node,
            params=_positional_params(node, is_method=is_method),
            kwonly=tuple(a.arg for a in node.args.kwonlyargs),
            is_method=is_method,
        )

    def walk(node: ast.AST, prefix: str, in_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{child.name}"
                add_function(child, qualname, is_method=in_class)
                walk(child, qualname, in_class=False)
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}.{child.name}", in_class=True)
            else:
                walk(child, prefix, in_class)

    walk(info.tree, info.name, in_class=False)


def _link_calls(project: ProjectContext) -> None:
    """Second pass: resolve every call to a project function, if any."""
    for info in project.modules.values():
        # calls made at module level (outside any def)
        module_caller = f"{info.name}:<module>"
        claimed: set = set()
        for fname, finfo in project.functions.items():
            if finfo.module is not info:
                continue
            edges: List[Tuple[ast.Call, str]] = []
            for call in _body_calls(finfo.node):
                claimed.add(id(call))
                callee = project.resolve_function(info, call.func)
                if callee is None:
                    continue
                edges.append((call, callee.qualname))
                project.call_sites.setdefault(callee.qualname, []).append(
                    CallSite(caller=fname, module=info, node=call)
                )
            if edges:
                project.calls_from[fname] = edges
        for node in ast.walk(info.tree):
            if not isinstance(node, ast.Call) or id(node) in claimed:
                continue
            callee = project.resolve_function(info, node.func)
            if callee is None:
                continue
            project.calls_from.setdefault(module_caller, []).append(
                (node, callee.qualname)
            )
            project.call_sites.setdefault(callee.qualname, []).append(
                CallSite(caller=module_caller, module=info, node=node)
            )


def build_project(
    py_files: Mapping[str, str],
    c_files: Optional[Mapping[str, str]] = None,
) -> ProjectContext:
    """Build a :class:`ProjectContext` from in-memory sources.

    ``py_files`` maps path -> source; unparseable modules are skipped
    (the per-file pass already reports E999 for them).  ``c_files``
    carries companion C sources for the FFI checker.
    """
    project = ProjectContext(c_files=dict(c_files or {}))
    for path, source in sorted(py_files.items()):
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            continue
        module_globals = set()
        toplevel = set()
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for leaf in ast.walk(target):
                        if isinstance(leaf, ast.Name):
                            module_globals.add(leaf.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                module_globals.add(stmt.target.id)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                toplevel.add(stmt.name)
        info = ModuleInfo(
            path=path,
            name=module_name_for(path),
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
            aliases=build_alias_map(tree),
            module_globals=frozenset(module_globals),
            toplevel_defs=frozenset(toplevel),
        )
        project.modules[path] = info
        project.by_name[info.name] = info
        _index_module(project, info)
    _link_calls(project)
    return project


def project_rules(
    rules: Optional[Dict[str, Rule]] = None
) -> Dict[str, ProjectRule]:
    """The registered whole-program rules (subset of the registry)."""
    active = rules if rules is not None else all_rules()
    return {
        rule_id: rule
        for rule_id, rule in active.items()
        if isinstance(rule, ProjectRule)
    }


def lint_project(
    project: ProjectContext,
    policy: LintPolicy,
    *,
    rules: Optional[Dict[str, Rule]] = None,
) -> List[Finding]:
    """Run every project rule; filter findings like the per-file engine.

    Each finding is kept only when its rule is enabled for the profile
    governing the finding's *path*, survives the same suppression
    comments (including first-line-of-statement span scoping) and is
    not baselined.  Findings in C files support no suppression comments
    -- an FFI mismatch must be fixed, not waved through.
    """
    raw: List[Finding] = []
    seen: set = set()
    for rule in project_rules(rules).values():
        for finding in rule.check_project(project):
            if finding in seen:
                continue  # two sinks can trace to one call site
            seen.add(finding)
            raw.append(finding)

    suppression_cache: Dict[str, Dict[int, frozenset]] = {}
    findings: List[Finding] = []
    for finding in raw:
        if finding.rule not in policy.rules_for(finding.path):
            continue
        if policy.is_baselined(finding.rule, finding.path):
            continue
        module = project.modules.get(finding.path)
        if module is not None:
            smap = suppression_cache.get(finding.path)
            if smap is None:
                smap = suppressed_lines(module.lines, module.tree)
                suppression_cache[finding.path] = smap
            ids = smap.get(finding.line, frozenset())
            if "ALL" in ids or finding.rule in ids:
                continue
        profile = policy.profile_for(finding.path)
        if finding.profile != profile:
            finding = dataclasses.replace(finding, profile=profile)
        findings.append(finding)
    return sorted(findings)


def _iter_c_files(paths: Sequence[str]) -> Iterator[Path]:
    from repro.lint.engine import _SKIP_DIRS  # shared skip list

    seen = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates = [root] if root.suffix == ".c" else []
        elif root.is_dir():
            candidates = sorted(
                p
                for p in root.rglob("*.c")
                if not any(part in _SKIP_DIRS for part in p.parts)
            )
        else:
            candidates = []
        for path in candidates:
            if path not in seen:
                seen.add(path)
                yield path


def lint_project_paths(
    paths: Sequence[str],
    policy: LintPolicy,
    *,
    rules: Optional[Dict[str, Rule]] = None,
    cache: Optional[object] = None,
) -> List[Finding]:
    """Whole-program lint of every ``.py`` (and companion ``.c``) file.

    ``cache`` is an optional :class:`repro.lint.cache.LintCache`: the
    result is replayed when the combined digest of every file matches
    (any single changed file invalidates it, as cross-module findings
    can move anywhere).
    """
    raw_files: Dict[str, bytes] = {
        str(p): p.read_bytes() for p in iter_python_files(paths)
    }
    c_raw: Dict[str, bytes] = {
        str(p): p.read_bytes() for p in _iter_c_files(paths)
    }
    digest = None
    if cache is not None:
        import hashlib

        hashes = {
            path: hashlib.sha256(data).hexdigest()
            for path, data in {**raw_files, **c_raw}.items()
        }
        digest = cache.project_digest(hashes)
        hit = cache.get_project(digest)
        if hit is not None:
            return hit
    py_files = {p: data.decode("utf-8") for p, data in raw_files.items()}
    c_files = {p: data.decode("utf-8") for p, data in c_raw.items()}
    project = build_project(py_files, c_files)
    findings = lint_project(project, policy, rules=rules)
    if cache is not None and digest is not None:
        cache.put_project(digest, findings)
    return findings
