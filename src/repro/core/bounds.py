"""Worst-case performance bounds (Theorems 2, 7, 8; Lemmas 4, 5, 6).

All bounds are expressed as a bound on the *ratio*

    max_i w(p_i) / (w(p) / N)

so a perfectly balanced partition has ratio 1 and every partition into at
most N parts trivially has ratio ≤ N (one part may hold everything).

OCR reconstruction
------------------
The scanned paper's formulas are partially garbled; the forms implemented
here were reconstructed from the surviving plain-language claims and are
validated by tests:

* Theorem 2 (HF):  ``r_α = 2`` for ``α ≥ 1/3``, else
  ``(1/α) · (1-α)^(⌊1/α⌋ - 2)``.  See :func:`r_alpha` for why the ⌈·⌉
  variant was rejected (real HF runs exceed it) and how the paper's quoted
  values fare; validated adversarially in ``tests/test_properties.py``.
* Theorem 7 (BA):  ``e · (1/α) · (1-α)^(⌈1/(2α)⌉ - 1)`` for N > 1/α, and
  Lemma 5 (``N · (1-α)^(⌊N/2⌋)``) for N ≤ 1/α.  The structure (an ``e``
  factor from Lemma 6, a (1-α)-power from Lemma 5, a 1/(1-α) step factor
  from Lemma 4) follows the proof sketch in the paper.
* Theorem 8 (BA-HF): ``e^((1-α)/λ) · r_α``.  This reproduces the paper's
  closing remark that choosing ``λ ≥ 1/ln(1+ε)`` makes BA-HF's guarantee at
  most ``(1+ε)`` times HF's.

Every returned bound is additionally clamped by the trivial bound ``N``.
"""

from __future__ import annotations

import math

from repro.core.problem import check_alpha

__all__ = [
    "r_alpha",
    "hf_bound",
    "phf_bound",
    "ba_bound",
    "ba_small_n_bound",
    "bahf_bound",
    "ba_step_bound",
    "phf_phase2_max_iterations",
    "phf_phase1_max_depth",
    "bound_for",
]


def r_alpha(alpha: float) -> float:
    """``r_α`` of Theorem 2: HF's worst-case ratio for α-bisector classes.

    Implemented as::

        r_α = 2                                for α ≥ 1/3
        r_α = (1/α) · (1-α)^(⌊1/α⌋ - 2)        for α < 1/3

    Validity: an adversarial search over fixed/mixed/random bisection
    sequences (tests + ``benchmarks``) finds no HF run exceeding this bound,
    while the superficially plausible ``⌈1/α⌉`` variant *is* exceeded (e.g.
    fixed α̂ = 0.3, N = 16 achieves ratio 1.646 > 1.633).  The paper's
    quoted values: ``r_{1/3} = 2`` holds exactly (the α<1/3 branch is
    continuous at 1/3: 3·(2/3) = 2); ``r_α < 10`` for α = 0.04 holds
    (9.776); the quoted "< 3 for α > 1 - 2^(-1/4) ≈ 0.159" holds for our
    form only from α ≈ 0.21 -- the paper's exact sharper constant could not
    be recovered from the damaged source, so we keep the provably-safe
    variant (see DESIGN.md, OCR-reconstruction note).
    """
    alpha = check_alpha(alpha)
    if alpha >= 1.0 / 3.0:
        return 2.0
    exponent = math.floor(1.0 / alpha) - 2
    return (1.0 / alpha) * (1.0 - alpha) ** exponent


def hf_bound(alpha: float, n: int) -> float:
    """Theorem 2 ratio bound for Algorithm HF on ``n`` processors.

    ``r_α`` is independent of ``n``; we clamp by the trivial bound ``n``
    (with fewer processors than 1/r_α the trivial bound is tighter).
    """
    _check_n(n)
    return min(float(n), r_alpha(alpha))


def phf_bound(alpha: float, n: int) -> float:
    """Theorem 3: PHF produces the same partition as HF, hence HF's bound."""
    return hf_bound(alpha, n)


def ba_small_n_bound(alpha: float, n: int) -> float:
    """Lemma 5 ratio bound for BA when ``n ≤ 1/α``.

    Weight form: ``max_i w(p_i) ≤ w(p) · (1-α)^(⌊n/2⌋)``; as a ratio this is
    ``n · (1-α)^(⌊n/2⌋)``.
    """
    alpha = check_alpha(alpha)
    _check_n(n)
    return n * (1.0 - alpha) ** (n // 2)


def ba_bound(alpha: float, n: int) -> float:
    """Theorem 7 ratio bound for Algorithm BA.

    ``e · (1/α) · (1-α)^(⌈1/(2α)⌉ - 1)`` for ``n > 1/α``; Lemma 5's bound for
    ``n ≤ 1/α``; always clamped by the trivial bound ``n``.
    """
    alpha = check_alpha(alpha)
    _check_n(n)
    if n <= 1.0 / alpha:
        return min(float(n), ba_small_n_bound(alpha, n))
    exponent = math.ceil(1.0 / (2.0 * alpha)) - 1
    value = math.e * (1.0 / alpha) * (1.0 - alpha) ** exponent
    return min(float(n), value)


def bahf_bound(alpha: float, n: int, lam: float = 1.0) -> float:
    """Theorem 8 ratio bound for Algorithm BA-HF with threshold ``λ``.

    ``e^((1-α)/λ) · r_α``: the BA phase hands HF a subproblem whose
    weight-per-processor exceeds the ideal by at most ``e^((1-α)/λ)``
    (Lemma 6 applied at the switch-over point ``N < λ/α + 1``), after which
    HF's guarantee applies.  ``λ → ∞`` recovers HF's bound; the paper's
    recipe ``λ ≥ 1/ln(1+ε)`` yields at most ``(1+ε)·r_α``.
    """
    alpha = check_alpha(alpha)
    _check_n(n)
    if lam <= 0:
        raise ValueError(f"lambda must be positive, got {lam}")
    value = math.exp((1.0 - alpha) / lam) * r_alpha(alpha)
    return min(float(n), value)


def ba_step_bound(weight: float, n: int) -> float:
    """Lemma 4: one BA step guarantees ``max_i w(p_i)/N_i ≤ w(p)/(N-1)``.

    Returns the right-hand side; callers compare the realised per-processor
    weights of the two children against it.
    """
    if n < 2:
        raise ValueError(f"Lemma 4 requires n >= 2, got {n}")
    return weight / (n - 1)


def phf_phase2_max_iterations(alpha: float) -> int:
    """Paper bound on PHF phase-2 iterations: ``⌈(1/α) · ln(1/α)⌉``.

    Each iteration shrinks the maximum remaining weight by ``(1-α)`` and the
    weight spread to cover is ``r_α``; the paper bounds the iteration count
    by ``(1/α)·ln(1/α)``.
    """
    alpha = check_alpha(alpha)
    return max(1, math.ceil((1.0 / alpha) * math.log(1.0 / alpha)))


def phf_phase1_max_depth(alpha: float, n: int) -> int:
    """Paper bound on PHF phase-1 bisection-tree depth: ``⌈log_{1/(1-α)} N⌉``.

    A node at depth d has weight ≤ w(p)·(1-α)^d, so depth cannot exceed
    ``log N / log(1/(1-α))`` before dropping below ``w(p)/N``.
    """
    alpha = check_alpha(alpha)
    _check_n(n)
    if n == 1:
        return 0
    return math.ceil(math.log(n) / math.log(1.0 / (1.0 - alpha)))


def bound_for(algorithm: str, alpha: float, n: int, lam: float = 1.0) -> float:
    """Dispatch the ratio bound by algorithm name ("hf"/"phf"/"ba"/"bahf")."""
    key = algorithm.lower().replace("-", "").replace("_", "")
    if key == "hf":
        return hf_bound(alpha, n)
    if key == "phf":
        return phf_bound(alpha, n)
    if key == "ba":
        return ba_bound(alpha, n)
    if key == "bahf":
        return bahf_bound(alpha, n, lam)
    raise ValueError(f"unknown algorithm {algorithm!r}")


def _check_n(n: int) -> None:
    if not isinstance(n, (int,)) or isinstance(n, bool):
        raise TypeError(f"n must be an int, got {type(n).__name__}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
