#!/usr/bin/env python
"""The parallel machine model in action: time, messages, collectives.

Reproduces the running-time story of Sections 3 and 5 on the
discrete-event machine: sequential HF needs Θ(N) time while PHF, BA and
BA-HF need O(log N); PHF pays global communication every phase-2
iteration, BA pays none at all.

Run:  python examples/parallel_machine_demo.py
"""

from repro import SyntheticProblem, UniformAlpha
from repro.simulator import (
    MachineConfig,
    simulate_ba,
    simulate_bahf,
    simulate_hf,
    simulate_phf,
)


def main() -> None:
    sampler = UniformAlpha(0.1, 0.5)
    config = MachineConfig(t_bisect=1.0, t_send=1.0, c_collective=1.0)

    print(
        f"{'N':>6} | {'HF time':>8} | {'PHF time':>8} {'colls':>6} | "
        f"{'BA time':>8} {'msgs':>6} | {'BA-HF':>8}"
    )
    print("-" * 68)
    for k in range(3, 11):
        n = 2**k
        problem = SyntheticProblem(1.0, sampler, seed=1234 + k)
        hf = simulate_hf(problem, n, config=config)
        phf = simulate_phf(problem, n, config=config)
        ba = simulate_ba(problem, n, config=config)
        bahf = simulate_bahf(problem, n, lam=1.0, config=config)
        assert phf.partition.same_pieces_as(hf.partition)  # Theorem 3
        print(
            f"{n:>6} | {hf.parallel_time:>8.0f} | {phf.parallel_time:>8.0f} "
            f"{phf.n_collectives:>6} | {ba.parallel_time:>8.0f} "
            f"{ba.n_messages:>6} | {bahf.parallel_time:>8.0f}"
        )

    print(
        "\nHF grows linearly in N; BA/BA-HF logarithmically; PHF is "
        "O(log N) with a large constant from its per-iteration collectives "
        "-- it overtakes sequential HF once N is large enough, exactly the "
        "trade-off the paper's conclusion discusses."
    )

    n = 256
    problem = SyntheticProblem(1.0, sampler, seed=99)
    for phase1 in ("central", "ba_prime"):
        res = simulate_phf(problem, n, config=config, phase1=phase1)
        print(
            f"\nPHF phase-1 strategy {phase1!r}: makespan "
            f"{res.parallel_time:.0f}, {res.n_messages} subproblem messages, "
            f"{res.n_control_messages} control messages, "
            f"{res.n_collectives} collectives "
            f"(phase1={res.phases['phase1']:.0f}, phase2={res.phases['phase2']:.0f})"
        )


if __name__ == "__main__":
    main()
