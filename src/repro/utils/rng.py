"""Deterministic random-number plumbing.

Every stochastic object in this library (synthetic problems, workload
generators, experiment trials) is seeded explicitly so that

* a problem node bisects the *same way* no matter which algorithm asks
  (required for the PHF == HF equality guarantee of Theorem 3), and
* experiment runs are bit-reproducible across processes and machines.

Child streams are derived with a SplitMix64-style hash so that sibling
subproblems get statistically independent streams without any shared
mutable state -- the same discipline mpi4py programs use to give each
rank its own stream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["split_seed", "child_seed", "ensure_generator", "SeedSequenceFactory"]

_MASK64 = 0xFFFFFFFFFFFFFFFF

# SplitMix64 constants (Steele, Lea & Flood 2014).
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """One SplitMix64 mixing round; full 64-bit avalanche."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def split_seed(seed: int, index: int) -> int:
    """Derive the ``index``-th child seed of ``seed``.

    Pure function of ``(seed, index)``; collisions between distinct
    (seed, index) pairs are as unlikely as 64-bit hash collisions.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return _splitmix64((seed ^ _splitmix64(index)) & _MASK64)


def child_seed(seed: int, *path: int) -> int:
    """Derive a seed for a node addressed by a path of child indices.

    ``child_seed(s)`` is ``s`` itself; ``child_seed(s, 0, 1)`` is the seed
    of the second child of the first child of the node seeded with ``s``.
    """
    out = seed & _MASK64
    for index in path:
        out = split_seed(out, index)
    return out


GeneratorLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def ensure_generator(rng: GeneratorLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence`` or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(f"cannot make a Generator out of {rng!r}")


class SeedSequenceFactory:
    """Hands out numbered, reproducible seeds for experiment trials.

    >>> fac = SeedSequenceFactory(1234)
    >>> fac.seed_for(0) == fac.seed_for(0)
    True
    >>> fac.seed_for(0) != fac.seed_for(1)
    True
    """

    def __init__(self, root_seed: Optional[int] = None) -> None:
        if root_seed is None:
            root_seed = int(np.random.SeedSequence().entropy) & _MASK64
        self._root = int(root_seed) & _MASK64

    @property
    def root_seed(self) -> int:
        """The root seed all trial seeds are derived from."""
        return self._root

    def seed_for(self, trial: int) -> int:
        """Deterministic 64-bit seed for trial number ``trial``."""
        return split_seed(self._root, trial)

    def generator_for(self, trial: int) -> np.random.Generator:
        """A fresh :class:`numpy.random.Generator` for trial ``trial``."""
        return np.random.default_rng(self.seed_for(trial))
