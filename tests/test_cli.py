"""Tests for the repro-experiments CLI."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_experiment_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sorting"])

    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.trials is None
        assert args.jobs == 1
        assert not args.full

    def test_all_flags(self):
        args = build_parser().parse_args(
            ["figure5", "--trials", "5", "--max-n", "64", "--jobs", "2", "--full"]
        )
        assert args.trials == 5 and args.max_n == 64 and args.jobs == 2
        assert args.full


class TestMain:
    def test_table1_smoke(self, capsys):
        assert main(["table1", "--trials", "5", "--max-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "avg" in out

    def test_figure5_smoke(self, capsys):
        assert main(["figure5", "--trials", "5", "--max-n", "64"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_lambda_smoke(self, capsys):
        assert main(["lambda", "--trials", "5", "--max-n", "64"]) == 0
        assert "lam=2" in capsys.readouterr().out

    def test_runtime_smoke(self, capsys):
        assert main(["runtime", "--max-n", "32"]) == 0
        assert "Runtime study" in capsys.readouterr().out

    def test_nonpow2_smoke(self, capsys):
        assert main(["nonpow2", "--trials", "5"]) == 0
        assert "difference" in capsys.readouterr().out

    def test_csv_written(self, tmp_path, capsys):
        target = tmp_path / "out.csv"
        assert (
            main(
                ["table1", "--trials", "5", "--max-n", "64", "--csv", str(target)]
            )
            == 0
        )
        content = target.read_text()
        assert content.startswith("algorithm,")

    def test_bad_max_n_exits(self):
        with pytest.raises(SystemExit):
            main(["table1", "--trials", "5", "--max-n", "2"])

    def test_topology_smoke(self, capsys):
        assert main(["topology", "--max-n", "64"]) == 0
        assert "Topology study" in capsys.readouterr().out

    def test_worstcase_smoke(self, capsys):
        assert main(["worstcase"]) == 0
        assert "tightness" in capsys.readouterr().out

    def test_distributions_smoke(self, capsys):
        assert main(["distributions", "--trials", "5", "--max-n", "32"]) == 0
        assert "uniform" in capsys.readouterr().out

    def test_families_smoke(self, capsys):
        assert main(["families", "--trials", "40"]) == 0
        assert "fe_tree" in capsys.readouterr().out

    def test_variance_smoke(self, capsys):
        assert main(["variance", "--trials", "5", "--max-n", "64"]) == 0
        assert "CV" in capsys.readouterr().out

    def test_intervals_smoke(self, capsys):
        assert main(["intervals", "--trials", "5", "--max-n", "64"]) == 0
        assert "spread" in capsys.readouterr().out

    def test_env_full_scale(self, monkeypatch, capsys):
        # REPRO_FULL picks the paper grid; cap it via --max-n to stay fast
        monkeypatch.setenv("REPRO_FULL", "1")
        assert main(["table1", "--trials", "2", "--max-n", "64"]) == 0
        out = capsys.readouterr().out
        assert "2 trials" in out

    def test_fault_smoke(self, capsys):
        assert main(["fault", "--trials", "3", "--max-n", "32"]) == 0
        assert "Fault study" in capsys.readouterr().out

    def test_fault_csv_written(self, tmp_path, capsys):
        target = tmp_path / "fault.csv"
        assert (
            main(
                [
                    "fault",
                    "--trials",
                    "3",
                    "--max-n",
                    "32",
                    "--fault-rates",
                    "0.0,0.2",
                    "--csv",
                    str(target),
                ]
            )
            == 0
        )
        assert target.read_text().startswith("algorithm,")

    def test_journal_resume_round_trip(self, tmp_path, capsys):
        journal = tmp_path / "t1.jsonl"
        argv = [
            "table1",
            "--trials",
            "4",
            "--max-n",
            "64",
            "--journal",
            str(journal),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first


class TestErrorPaths:
    """Bad inputs exit non-zero with a one-line message, no traceback."""

    def _argparse_error(self, capsys, argv):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "Traceback" not in err
        return err

    def test_unknown_engine(self, capsys):
        err = self._argparse_error(
            capsys, ["runtime", "--max-n", "32", "--engine", "warp"]
        )
        assert "--engine" in err

    def test_alpha_out_of_range(self, capsys):
        err = self._argparse_error(
            capsys, ["fault", "--trials", "2", "--alpha", "0.7"]
        )
        assert "(0, 0.5]" in err

    def test_alpha_not_a_number(self, capsys):
        err = self._argparse_error(
            capsys, ["fault", "--trials", "2", "--alpha", "many"]
        )
        assert "(0, 0.5]" in err

    def test_fault_rates_out_of_range(self, capsys):
        err = self._argparse_error(
            capsys, ["fault", "--trials", "2", "--fault-rates", "0.1,1.5"]
        )
        assert "[0, 1]" in err

    def test_fault_rates_garbage(self, capsys):
        err = self._argparse_error(
            capsys, ["fault", "--trials", "2", "--fault-rates", "a,b"]
        )
        assert "comma-separated" in err

    def test_csv_to_missing_dir_fails_cleanly(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "out.csv"
        rc = main(
            ["table1", "--trials", "2", "--max-n", "64", "--csv", str(target)]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "cannot write csv" in err
        assert "Traceback" not in err

    def test_json_to_missing_dir_fails_cleanly(self, tmp_path, capsys):
        target = tmp_path / "no" / "such" / "dir" / "out.json"
        rc = main(
            ["table1", "--trials", "2", "--max-n", "64", "--json", str(target)]
        )
        assert rc == 1
        err = capsys.readouterr().err
        assert "cannot write json" in err
        assert "Traceback" not in err
