"""Dependency-free static analysis for reproducibility invariants.

``repro.lint`` machine-enforces the hand-maintained rules the
reproduction's correctness rests on: explicit SplitMix64 seeding
(Theorem 3's PHF == HF equality), no hidden global RNG or wall-clock
state in kernel paths, tolerance-based float comparison, and the
``0 < α ≤ 1/2`` precondition of Definition 1.  Pure stdlib (``ast``),
works offline, no third-party dependencies.

Usage::

    python -m repro.lint src benchmarks examples
    python -m repro.lint --format json src
    python -m repro.lint --list-rules

or programmatically::

    from repro.lint import lint_paths, load_policy
    findings = lint_paths(["src"], load_policy())

Per-line suppression: ``# repro-lint: disable=R004`` (comma-separate
for several IDs, or ``disable=all``).  Path scoping (strict kernel
profile vs relaxed driver profile) comes from ``[tool.repro-lint]`` in
``pyproject.toml``; see :mod:`repro.lint.policy`.
"""

from __future__ import annotations

from repro.lint import rules as _rules  # noqa: F401  (registers R001-R008)
from repro.lint.cli import main
from repro.lint.engine import lint_file, lint_paths, lint_source
from repro.lint.findings import Finding
from repro.lint.policy import (
    DEFAULT_PROFILE_PATHS,
    PROFILE_RULES,
    LintPolicy,
    load_policy,
)
from repro.lint.registry import LintContext, Rule, all_rules, get_rule, rule_ids

__all__ = [
    "Finding",
    "LintContext",
    "LintPolicy",
    "Rule",
    "PROFILE_RULES",
    "DEFAULT_PROFILE_PATHS",
    "all_rules",
    "get_rule",
    "rule_ids",
    "lint_file",
    "lint_paths",
    "lint_source",
    "load_policy",
    "main",
]
