"""Tests for the chaos harness and the supervised chunk executor."""

import os
import pickle
import signal
import threading
import time

import pytest

from repro.chaos import (
    CHAOS_PROFILES,
    FAULT_KINDS,
    ChaosConfig,
    ChaosPlan,
    ChaosSpec,
    ChaosTransientError,
    RunReport,
    chaos_call,
    chaos_plan_for,
)
from repro.chaos.crashpoints import CrashSpec
from repro.experiments.checkpoint import (
    ChunkJournal,
    ChunkQuarantinedError,
    RunCancelledError,
    _backoff_delay,
    execute_chunks,
)

KEYS = [f"cell:{i}" for i in range(30)]
FP = {"kind": "chaos-test", "seed": 1}


def _double(task):
    return task * 2


def _sleepy(task):
    """(duration, value) -> value after sleeping; picklable pool worker."""
    duration, value = task
    time.sleep(duration)
    return value


def _boom(task):
    raise ValueError(f"task {task} always fails")


def _kill_if_worker(task):
    """SIGKILL the process unless it is the parent named in the task.

    A *real* repeat-offender: unlike an injected chaos kill (which fires
    once per scheduled attempt), this dies on every pooled attempt, so it
    exhausts any rebuild budget and forces in-parent degradation.
    """
    parent_pid, value = task
    if os.getpid() != parent_pid:
        os.kill(os.getpid(), signal.SIGKILL)
    return value


class TestChaosConfig:
    def test_null_by_default(self):
        assert ChaosConfig().is_null

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="probability"):
            ChaosConfig(kill_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            ChaosConfig(kill_rate=0.6, hang_rate=0.6)

    def test_caps_must_cover_floors(self):
        with pytest.raises(ValueError, match="max_kills"):
            ChaosConfig(min_kills=3, max_kills=1)

    def test_profiles_are_valid(self):
        for name, profile in CHAOS_PROFILES.items():
            assert not profile.is_null, name


class TestChaosPlan:
    def test_deterministic(self):
        config = CHAOS_PROFILES["heavy"]
        a = chaos_plan_for(config, KEYS, seed=42)
        b = chaos_plan_for(config, KEYS, seed=42)
        assert a == b
        assert a.faults == b.faults

    def test_seed_changes_schedule(self):
        config = ChaosConfig(transient_rate=0.5)
        a = chaos_plan_for(config, KEYS, seed=1)
        b = chaos_plan_for(config, KEYS, seed=2)
        assert a.faults != b.faults

    def test_null_config_empty_plan(self):
        plan = chaos_plan_for(ChaosConfig(), KEYS, seed=7)
        assert plan.is_empty
        assert plan.fault_for(KEYS[0], 0) is None

    def test_smoke_profile_guarantees_scenario(self):
        # the acceptance scenario must hold for ANY seed: exactly two
        # kills and one hang (floors == caps in the smoke profile)
        for seed in range(10):
            plan = chaos_plan_for(CHAOS_PROFILES["smoke"], KEYS, seed=seed)
            assert plan.count("kill") == 2, seed
            assert plan.count("hang") == 1, seed

    def test_caps_demote_to_transient(self):
        config = ChaosConfig(kill_rate=1.0, max_kills=2)
        plan = chaos_plan_for(config, KEYS, seed=3)
        assert plan.count("kill") == 2
        assert plan.count("transient") == len(KEYS) - 2

    def test_retry_attempts_never_kill(self):
        config = ChaosConfig(kill_rate=0.9, transient_rate=0.1, faulty_attempts=3)
        plan = chaos_plan_for(config, KEYS, seed=5)
        for key, attempt, kind in plan.faults:
            if attempt >= 1:
                assert kind != "kill", (key, attempt)

    def test_attempts_beyond_budget_are_clean(self):
        config = ChaosConfig(transient_rate=1.0, faulty_attempts=2)
        plan = chaos_plan_for(config, KEYS, seed=5)
        for key in KEYS:
            assert plan.fault_for(key, 0) == "transient"
            assert plan.fault_for(key, 2) is None

    def test_plan_pickles(self):
        plan = chaos_plan_for(CHAOS_PROFILES["smoke"], KEYS, seed=1)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        for key in KEYS:
            assert clone.fault_for(key, 0) == plan.fault_for(key, 0)

    def test_describe_counts_every_kind(self):
        plan = chaos_plan_for(CHAOS_PROFILES["smoke"], KEYS, seed=1)
        described = plan.describe()
        assert set(described) == set(FAULT_KINDS)
        assert sum(described.values()) == len(plan.faults)


class TestInjectors:
    def _plan(self, kind, **config_kw):
        config = ChaosConfig(transient_rate=0.1, **config_kw)
        return ChaosPlan(config=config, seed=0, faults=(("k", 0, kind),))

    def test_no_fault_is_transparent(self):
        plan = self._plan("transient")
        assert chaos_call(_double, 21, plan, "other-key", 0, True) == 42
        assert chaos_call(_double, 21, plan, "k", 1, True) == 42

    def test_transient_raises(self):
        plan = self._plan("transient")
        with pytest.raises(ChaosTransientError, match="injected transient"):
            chaos_call(_double, 21, plan, "k", 0, True)

    def test_kill_demoted_in_process(self):
        plan = self._plan("kill")
        with pytest.raises(ChaosTransientError, match="demoted"):
            chaos_call(_double, 21, plan, "k", 0, True)

    def test_delay_returns_late_result(self):
        plan = self._plan("delay", delay_seconds=0.01)
        assert chaos_call(_double, 21, plan, "k", 0, True) == 42

    def test_hang_sleeps_then_computes(self):
        plan = self._plan("hang", hang_seconds=0.05)
        t0 = time.monotonic()
        assert chaos_call(_double, 21, plan, "k", 0, True) == 42
        assert time.monotonic() - t0 >= 0.05


class TestCrashSpec:
    def test_parse_round_trip(self):
        spec = CrashSpec.parse("journal-append:4:9")
        assert spec == CrashSpec(site="journal-append", hit=4, offset=9)
        assert CrashSpec.parse("write-atomic-pre:1").offset == 0

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="site"):
            CrashSpec.parse("nowhere:1")
        with pytest.raises(ValueError, match="integers"):
            CrashSpec.parse("journal-append:x")
        with pytest.raises(ValueError, match="hit"):
            CrashSpec(site="journal-append", hit=0)


class TestBackoff:
    def test_deterministic(self):
        assert _backoff_delay("k", 1, 0.1, 2.0) == _backoff_delay("k", 1, 0.1, 2.0)

    def test_jitter_within_half_to_full(self):
        for attempt in (1, 2, 3):
            raw = min(2.0, 0.1 * 2 ** (attempt - 1))
            delay = _backoff_delay("cell:3", attempt, 0.1, 2.0)
            assert raw / 2 <= delay < raw

    def test_capped(self):
        assert _backoff_delay("k", 30, 0.1, 2.0) < 2.0

    def test_zero_base_disables(self):
        assert _backoff_delay("k", 1, 0.0, 2.0) == 0.0


class TestQuarantine:
    def test_strict_raises_after_completion(self, tmp_path):
        with ChunkJournal.open(tmp_path / "j.jsonl", fingerprint=FP) as journal:
            with pytest.raises(ChunkQuarantinedError, match="always fails") as info:
                execute_chunks(
                    [1, 2, 3],
                    lambda t: _boom(t) if t == 2 else t * 2,
                    keys=["a", "b", "c"],
                    n_jobs=1,
                    retries=1,
                    journal=journal,
                    backoff_base=0.0,
                )
            # the healthy chunks completed (and were journaled) first
            assert set(journal.completed) == {"a", "c"}
            assert info.value.keys == ["b"]
            assert info.value.report.accounted

    def test_non_strict_leaves_none_slot(self):
        report = RunReport()
        out = execute_chunks(
            [1, 2, 3],
            lambda t: _boom(t) if t == 2 else t * 2,
            keys=["a", "b", "c"],
            n_jobs=1,
            retries=0,
            strict=False,
            report=report,
            backoff_base=0.0,
        )
        assert out == [2, None, 6]
        assert report.quarantined == ["b"]
        assert report.accounted
        assert "always fails" in report.errors["b"]


class TestSupervisedPool:
    def _kill_plan(self, keys, victims):
        config = ChaosConfig(kill_rate=0.01)
        return ChaosPlan(
            config=config,
            seed=0,
            faults=tuple((k, 0, "kill") for k in victims),
        )

    def test_pool_rebuilt_after_worker_kill(self, tmp_path):
        keys = [f"k{i}" for i in range(8)]
        plan = self._kill_plan(keys, ["k2", "k5"])
        report = RunReport()
        with ChunkJournal.open(tmp_path / "j.jsonl", fingerprint=FP) as journal:
            out = execute_chunks(
                list(range(8)),
                _double,
                keys=keys,
                n_jobs=2,
                retries=2,
                chaos=plan,
                report=report,
                journal=journal,
                backoff_base=0.0,
            )
            assert out == [i * 2 for i in range(8)]
            assert report.pool_rebuilds >= 1
            assert report.accounted
            assert not report.quarantined
            assert set(journal.completed) == set(keys)
        # no orphans: every worker the run ever spawned is gone
        assert report.worker_pids
        deadline = time.monotonic() + 5.0
        for pid in report.worker_pids:
            while time.monotonic() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"worker {pid} still alive after the run")

    def test_rebuild_budget_degrades_to_parent(self):
        # one chunk SIGKILLs every pooled attempt: it breaks the pool,
        # breaks the rebuilt pool, and only succeeds once the exhausted
        # budget degrades execution to the parent process
        parent = os.getpid()
        tasks = [(parent, i) for i in range(6)]
        keys = [f"k{i}" for i in range(6)]
        report = RunReport()
        out = execute_chunks(
            tasks,
            _kill_if_worker,
            keys=keys,
            n_jobs=2,
            retries=6,
            report=report,
            rebuild_budget=1,
            backoff_base=0.0,
        )
        assert out == list(range(6))
        assert report.pool_rebuilds == 1
        assert report.degraded_to_parent
        assert report.in_parent >= 1
        assert report.accounted

    def test_timeout_measured_from_start_not_queue_wait(self):
        # 1 slow chunk + 5 fast ones on 2 workers: total queue wait for
        # the last fast chunk exceeds the deadline, but no fast chunk's
        # own runtime does -- none of them may be charged
        tasks = [(0.9, 0)] + [(0.15, i) for i in range(1, 6)]
        keys = [f"k{i}" for i in range(6)]
        report = RunReport()
        out = execute_chunks(
            tasks,
            _sleepy,
            keys=keys,
            n_jobs=2,
            timeout=0.5,
            retries=0,
            strict=False,
            report=report,
            backoff_base=0.0,
        )
        assert out[1:] == [1, 2, 3, 4, 5]
        assert report.quarantined == ["k0"]
        assert report.timeouts >= 1
        assert report.errors["k0"].startswith("chunk exceeded")

    def test_threads_hang_is_abandoned_and_retried(self):
        # chaos hang on attempt 0 only; the retry (attempt 1) is clean,
        # so the chunk completes even though threads cannot be killed
        keys = [f"k{i}" for i in range(4)]
        config = ChaosConfig(hang_rate=0.01, hang_seconds=0.8)
        plan = ChaosPlan(config=config, seed=0, faults=(("k1", 0, "hang"),))
        report = RunReport()
        out = execute_chunks(
            [(0.01, i) for i in range(4)],
            _sleepy,
            keys=keys,
            n_jobs=2,
            backend="threads",
            timeout=0.3,
            retries=1,
            chaos=plan,
            report=report,
            backoff_base=0.0,
        )
        assert out == [0, 1, 2, 3]
        assert report.timeouts >= 1
        assert report.retries >= 1
        assert report.accounted
        assert not report.quarantined


class TestCancellation:
    def test_run_deadline_flushes_journal_first(self, tmp_path):
        tasks = [(0.01, 0), (0.01, 1), (5.0, 2), (5.0, 3)]
        keys = [f"k{i}" for i in range(4)]
        report = RunReport()
        with ChunkJournal.open(tmp_path / "j.jsonl", fingerprint=FP) as journal:
            with pytest.raises(RunCancelledError, match="deadline"):
                execute_chunks(
                    tasks,
                    _sleepy,
                    keys=keys,
                    n_jobs=2,
                    backend="threads",
                    journal=journal,
                    report=report,
                    run_deadline=0.5,
                    backoff_base=0.0,
                )
            assert report.cancelled
            # the fast chunks finished before the deadline and survived
            assert {"k0", "k1"} <= set(journal.completed)

    def test_sigterm_cancels_gracefully(self):
        report = RunReport()
        timer = threading.Timer(
            0.3, os.kill, args=(os.getpid(), signal.SIGTERM)
        )
        timer.start()
        try:
            with pytest.raises(RunCancelledError, match="SIGTERM"):
                execute_chunks(
                    [(1.0, i) for i in range(4)],
                    _sleepy,
                    keys=[f"k{i}" for i in range(4)],
                    n_jobs=2,
                    backend="threads",
                    report=report,
                    cancel_on_sigterm=True,
                    backoff_base=0.0,
                )
        finally:
            timer.cancel()
        assert report.cancelled
        # the handler was restored: SIGTERM behaves normally again
        assert signal.getsignal(signal.SIGTERM) in (
            signal.SIG_DFL,
            signal.default_int_handler,
        ) or callable(signal.getsignal(signal.SIGTERM))


class TestChaosBitIdentity:
    def test_empty_plan_matches_plain_execution(self):
        plan = chaos_plan_for(ChaosConfig(), KEYS[:6], seed=9)
        plain = execute_chunks(list(range(6)), _double, keys=KEYS[:6], n_jobs=1)
        stormy = execute_chunks(
            list(range(6)), _double, keys=KEYS[:6], n_jobs=1, chaos=plan
        )
        assert stormy == plain

    def test_transient_chaos_is_bit_identical(self):
        config = ChaosConfig(transient_rate=0.4, delay_rate=0.2, delay_seconds=0.0)
        plan = chaos_plan_for(config, KEYS[:8], seed=3)
        assert not plan.is_empty
        report = RunReport()
        plain = execute_chunks(list(range(8)), _double, keys=KEYS[:8], n_jobs=1)
        stormy = execute_chunks(
            list(range(8)),
            _double,
            keys=KEYS[:8],
            n_jobs=1,
            retries=2,
            chaos=plan,
            report=report,
            backoff_base=0.0,
        )
        assert stormy == plain
        assert report.retries >= 1
        assert report.accounted
