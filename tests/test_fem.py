"""Tests for the FEM substrate (Poisson + recursive substructuring)."""

import numpy as np
import pytest

from repro.core import probe_bisector_quality, run_ba, run_hf
from repro.fem import (
    ParallelSolveEstimate,
    PoissonProblem,
    critical_path_cost,
    dissection_fe_tree,
    dissection_tree,
    estimate_parallel_solve,
    manufactured_solution,
)
from repro.problems import gaussian_hotspot_density
from repro.problems.fe_tree import FENode


class TestPoisson:
    def test_manufactured_solution_converges(self):
        u_exact, f = manufactured_solution()
        errors = []
        for n in (10, 20, 40):
            p = PoissonProblem(n, n, f)
            u = p.solve()
            xg, yg = p.grid()
            errors.append(float(np.abs(u - u_exact(xg, yg)).max()))
        # second-order scheme: error drops ~4x per mesh halving
        assert errors[1] < errors[0] / 3.0
        assert errors[2] < errors[1] / 3.0

    def test_residual_of_solution_is_tiny(self):
        _, f = manufactured_solution()
        p = PoissonProblem(15, 23, f)
        assert p.residual_norm(p.solve().ravel()) < 1e-10

    def test_residual_of_garbage_is_large(self):
        _, f = manufactured_solution()
        p = PoissonProblem(10, 10, f)
        assert p.residual_norm(np.ones(p.n_unknowns)) > 0.1

    def test_operator_shape_and_symmetry(self):
        _, f = manufactured_solution()
        p = PoissonProblem(7, 5, f)
        A = p.operator()
        assert A.shape == (35, 35)
        assert abs(A - A.T).max() == pytest.approx(0.0)

    def test_solution_positive_inside(self):
        # -Δu = positive source, zero boundary => u > 0 (max principle)
        _, f = manufactured_solution()
        u = PoissonProblem(12, 12, f).solve()
        assert (u > 0).all()

    def test_validation(self):
        _, f = manufactured_solution()
        with pytest.raises(ValueError):
            PoissonProblem(0, 5, f)


class TestDissectionTree:
    def test_costs_positive_and_finite(self):
        root = dissection_tree(32, 32)
        tree = dissection_fe_tree(32, 32)
        assert tree.weight > 0
        assert np.isfinite(tree.weight)

    def test_uniform_grid_gives_balanced_splits(self):
        tree = dissection_fe_tree(32, 32)
        report = probe_bisector_quality(tree, max_nodes=64)
        assert report.min_alpha > 0.05

    def test_density_skews_tree(self):
        density = gaussian_hotspot_density((48, 48), n_hotspots=1, peak=80.0, seed=1)
        skewed = dissection_tree(48, 48, density=density)
        balanced = dissection_tree(48, 48)

        def depth(node):
            best, stack = 1, [(node, 1)]
            while stack:
                cur, d = stack.pop()
                best = max(best, d)
                stack.extend((c, d + 1) for c in cur.children)
            return best

        # adaptive trees go deeper where the work concentrates
        assert depth(skewed) >= depth(balanced)

    def test_panelisation_conserves_cost(self):
        coarse = dissection_tree(32, 32, panel_size=1000)  # ~no panelling
        fine = dissection_tree(32, 32, panel_size=4)
        assert coarse.total_cost() == pytest.approx(fine.total_cost())
        assert fine.size() > coarse.size()

    def test_small_grid_is_single_leaf(self):
        root = dissection_tree(4, 4, leaf_cells=64)
        assert root.children == ()

    def test_validation(self):
        with pytest.raises(ValueError):
            dissection_tree(0, 4)
        with pytest.raises(ValueError):
            dissection_tree(8, 8, leaf_cells=0)
        with pytest.raises(ValueError):
            dissection_tree(8, 8, panel_size=0)
        with pytest.raises(ValueError):
            dissection_tree(8, 8, density=np.ones((3, 3)))
        with pytest.raises(ValueError):
            dissection_tree(8, 8, density=np.zeros((8, 8)))


class TestCriticalPath:
    def test_chain_is_sum(self):
        chain = FENode(1.0, left=FENode(2.0, left=FENode(3.0)))
        assert critical_path_cost(chain) == pytest.approx(6.0)

    def test_balanced_tree_takes_max_branch(self):
        root = FENode(1.0, left=FENode(10.0), right=FENode(2.0))
        assert critical_path_cost(root) == pytest.approx(11.0)

    def test_path_at_most_total(self):
        tree = dissection_fe_tree(40, 40)
        assert critical_path_cost(tree.root) <= tree.weight + 1e-9


class TestParallelSolveEstimate:
    @pytest.fixture(scope="class")
    def setup(self):
        density = gaussian_hotspot_density((48, 48), n_hotspots=1, peak=20.0, seed=3)
        tree = dissection_fe_tree(48, 48, density=density)
        partition = run_hf(dissection_fe_tree(48, 48, density=density), 8)
        return tree, partition

    def test_speedup_bounds(self, setup):
        tree, partition = setup
        est = estimate_parallel_solve(tree, partition)
        assert 1.0 <= est.speedup <= 8.0
        assert 0.0 < est.efficiency <= 1.0

    def test_makespan_respects_both_bounds(self, setup):
        tree, partition = setup
        est = estimate_parallel_solve(tree, partition)
        assert est.parallel_flops >= est.max_processor_flops
        assert est.parallel_flops >= est.critical_path_flops

    def test_serial_equals_tree_weight(self, setup):
        tree, partition = setup
        est = estimate_parallel_solve(tree, partition)
        assert est.serial_flops == pytest.approx(tree.weight)

    def test_better_balance_no_worse_speedup(self):
        density = gaussian_hotspot_density((48, 48), n_hotspots=2, peak=20.0, seed=4)
        mk = lambda: dissection_fe_tree(48, 48, density=density)
        hf = estimate_parallel_solve(mk(), run_hf(mk(), 6))
        ba = estimate_parallel_solve(mk(), run_ba(mk(), 6))
        assert hf.max_processor_flops <= ba.max_processor_flops + 1e-9


class TestEndToEnd:
    def test_full_pipeline(self):
        """PDE -> dissection FE-tree -> balance -> estimate, all coherent."""
        _, f = manufactured_solution()
        poisson = PoissonProblem(32, 32, f)
        assert poisson.residual_norm(poisson.solve().ravel()) < 1e-10

        tree = dissection_fe_tree(32, 32, leaf_cells=32)
        part = run_hf(dissection_fe_tree(32, 32, leaf_cells=32), 8)
        part.validate()
        est = estimate_parallel_solve(tree, part)
        assert est.speedup > 1.0
