"""Unit tests for the sweep runner."""

import numpy as np
import pytest

from repro.core.bounds import bound_for
from repro.experiments.config import StochasticConfig
from repro.experiments.runner import chunk_bounds, run_sweep
from repro.problems import UniformAlpha


@pytest.fixture(scope="module")
def small_sweep():
    cfg = StochasticConfig(
        sampler=UniformAlpha(0.1, 0.5),
        n_values=(32, 64),
        algorithms=("hf", "bahf", "ba"),
        n_trials=40,
        seed=7,
    )
    return run_sweep(cfg)


class TestRunSweep:
    def test_one_record_per_cell(self, small_sweep):
        assert len(small_sweep.records) == 6

    def test_records_carry_upper_bounds(self, small_sweep):
        for rec in small_sweep.records:
            expected = bound_for(rec.algorithm, 0.1, rec.n_processors, 1.0)
            assert rec.upper_bound == pytest.approx(expected)

    def test_observed_below_upper_bound(self, small_sweep):
        # the paper's central observation: averages far below worst case
        for rec in small_sweep.records:
            assert rec.sample.maximum <= rec.upper_bound + 1e-9
            assert rec.sample.mean < rec.upper_bound

    def test_ordering_hf_best_ba_worst(self, small_sweep):
        # paper: "the balancing quality was the best for Algorithm HF and
        # the worst for Algorithm BA in all experiments"
        for n in (32, 64):
            hf = small_sweep.get("hf", n).sample.mean
            bahf = small_sweep.get("bahf", n).sample.mean
            ba = small_sweep.get("ba", n).sample.mean
            assert hf <= bahf <= ba

    def test_get_unknown_cell_raises(self, small_sweep):
        with pytest.raises(KeyError):
            small_sweep.get("hf", 999)

    def test_series_ascending(self, small_sweep):
        series = small_sweep.series("hf", "mean")
        assert [n for n, _ in series] == [32, 64]

    def test_series_upper_bound_field(self, small_sweep):
        series = small_sweep.series("ba", "upper_bound")
        assert all(v > 1 for _, v in series)

    def test_algorithms_order_preserved(self, small_sweep):
        assert small_sweep.algorithms() == ["hf", "bahf", "ba"]

    def test_record_as_dict(self, small_sweep):
        d = small_sweep.records[0].as_dict()
        for key in ("algorithm", "n", "sampler", "lambda", "ub", "avg"):
            assert key in d


class TestParallelJobs:
    def test_njobs_matches_serial(self):
        base = dict(
            sampler=UniformAlpha(0.1, 0.5),
            n_values=(32, 64),
            algorithms=("hf", "ba"),
            n_trials=15,
            seed=3,
        )
        serial = run_sweep(StochasticConfig(**base, n_jobs=1))
        parallel = run_sweep(StochasticConfig(**base, n_jobs=2))
        for rs, rp in zip(serial.records, parallel.records):
            assert rs.sample.mean == pytest.approx(rp.sample.mean)
            assert rs.sample.maximum == pytest.approx(rp.sample.maximum)


class TestChunkBounds:
    def test_exact_cover_in_order(self):
        assert chunk_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_chunk_when_large(self):
        assert chunk_bounds(5, 100) == [(0, 5)]

    def test_chunk_size_one(self):
        assert chunk_bounds(3, 1) == [(0, 1), (1, 2), (2, 3)]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            chunk_bounds(0, 4)
        with pytest.raises(ValueError):
            chunk_bounds(4, 0)


class TestChunkedScheduling:
    BASE = dict(
        sampler=UniformAlpha(0.1, 0.5),
        n_values=(32, 64),
        algorithms=("hf", "bahf", "ba"),
        n_trials=25,
        seed=9,
    )

    def test_parallel_bit_identical_to_serial(self):
        # chunk layout and merge order depend on the config only, so the
        # records must be *exactly* equal, not just statistically close
        serial = run_sweep(StochasticConfig(**self.BASE, n_jobs=1, chunk_size=8))
        parallel = run_sweep(StochasticConfig(**self.BASE, n_jobs=2, chunk_size=8))
        assert serial.records == parallel.records

    def test_odd_chunk_size_matches_whole_cell(self):
        whole = run_sweep(StochasticConfig(**self.BASE, chunk_size=25))
        chunked = run_sweep(StochasticConfig(**self.BASE, chunk_size=7))
        for rw, rc in zip(whole.records, chunked.records):
            assert rw.sample.mean == pytest.approx(rc.sample.mean, rel=1e-12)
            assert rw.sample.maximum == rc.sample.maximum
            assert rw.sample.minimum == rc.sample.minimum
            assert rw.sample.variance == pytest.approx(rc.sample.variance, rel=1e-9)

    def test_chunk_size_one_still_works(self):
        cfg = StochasticConfig(
            sampler=UniformAlpha(0.1, 0.5),
            n_values=(32,),
            algorithms=("hf",),
            n_trials=5,
            chunk_size=1,
        )
        result = run_sweep(cfg)
        assert result.records[0].sample.n_trials == 5


class TestSweepResultIndex:
    def test_get_uses_index(self, small_sweep):
        rec = small_sweep.get("bahf", 64)
        assert rec.algorithm == "bahf" and rec.n_processors == 64

    def test_missing_cell_error_lists_available(self, small_sweep):
        with pytest.raises(KeyError) as excinfo:
            small_sweep.get("hf", 999)
        message = str(excinfo.value)
        assert "'hf'" in message and "999" in message
        assert "available cells" in message
        assert "(ba, 32)" in message
