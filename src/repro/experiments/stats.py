"""Statistical utilities for the Monte-Carlo harness.

The paper reports min/avg/max over 1000 trials and argues informally that
the outcomes are "statistically meaningful".  These helpers make such
claims checkable at any trial count:

* :func:`bootstrap_ci` -- percentile bootstrap confidence interval for the
  mean ratio of one cell,
* :func:`mean_difference_ci` -- bootstrap CI for the difference of two
  cells' means (e.g. BA-HF at λ=1 vs λ=2: the paper's "≈10 % improvement"
  is significant iff the CI excludes 0),
* :func:`required_trials` -- how many trials are needed for a target
  standard error, given a pilot sample.

Pure numpy, deterministic via explicit seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.utils.mathutils import is_zero

__all__ = [
    "ConfidenceInterval",
    "bootstrap_ci",
    "mean_difference_ci",
    "welch_diff_ci",
    "required_trials",
]


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a point estimate."""

    estimate: float
    lower: float
    upper: float
    confidence: float

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper

    def excludes_zero(self) -> bool:
        """True when 0 lies outside the interval (a significant difference)."""
        return not self.contains(0.0)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.estimate:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"@{100 * self.confidence:.0f}%"
        )


def _check_samples(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    return arr


def bootstrap_ci(
    samples: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Percentile-bootstrap CI for the mean of ``samples``."""
    arr = _check_samples(samples)
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 10:
        raise ValueError(f"n_resamples must be >= 10, got {n_resamples}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(arr.mean()),
        lower=float(lo),
        upper=float(hi),
        confidence=confidence,
    )


def mean_difference_ci(
    samples_a: Sequence[float],
    samples_b: Sequence[float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> ConfidenceInterval:
    """Bootstrap CI for ``mean(a) - mean(b)`` (independent samples).

    Positive interval entirely above zero ⇒ cell *a*'s mean is
    significantly larger (e.g. λ=1's ratio vs λ=2's: the improvement is
    real if this CI excludes zero).
    """
    a = _check_samples(samples_a)
    b = _check_samples(samples_b)
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    idx_a = rng.integers(0, a.size, size=(n_resamples, a.size))
    idx_b = rng.integers(0, b.size, size=(n_resamples, b.size))
    diffs = a[idx_a].mean(axis=1) - b[idx_b].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(diffs, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        estimate=float(a.mean() - b.mean()),
        lower=float(lo),
        upper=float(hi),
        confidence=confidence,
    )


def welch_diff_ci(
    mean_a: float,
    var_a: float,
    n_a: int,
    mean_b: float,
    var_b: float,
    n_b: int,
    *,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Normal-approximation CI for a difference of means from summaries.

    Works straight off stored :class:`~repro.core.metrics.RatioSample`
    summaries (mean, sample variance, trial count) -- no raw trial data
    needed -- using the Welch standard error
    ``sqrt(var_a/n_a + var_b/n_b)`` and a z quantile (fine for the
    hundreds of trials the harness runs).
    """
    if n_a < 2 or n_b < 2:
        raise ValueError("need at least 2 trials per cell")
    if var_a < 0 or var_b < 0:
        raise ValueError("variances must be non-negative")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    se = float(np.sqrt(var_a / n_a + var_b / n_b))
    # inverse normal CDF via numpy (erfinv through special-case table-free
    # approach): use the quantile of a large normal sample is overkill --
    # the two common cases suffice and otherwise fall back to scipy-free
    # Acklam-style approximation.
    z = _z_quantile(0.5 + confidence / 2.0)
    diff = mean_a - mean_b
    return ConfidenceInterval(
        estimate=diff,
        lower=diff - z * se,
        upper=diff + z * se,
        confidence=confidence,
    )


def _z_quantile(p: float) -> float:
    """Standard-normal quantile (Acklam's rational approximation, |err|<1e-9)."""
    if not (0.0 < p < 1.0):
        raise ValueError(f"p must be in (0, 1), got {p}")
    # coefficients for the central and tail regions
    a = [-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00]
    b = [-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00]
    p_low, p_high = 0.02425, 1.0 - 0.02425
    if p < p_low:
        q = np.sqrt(-2.0 * np.log(p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        return float(num / den)
    if p > p_high:
        q = np.sqrt(-2.0 * np.log(1.0 - p))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        return float(-num / den)
    q = p - 0.5
    r = q * q
    num = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q
    den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
    return float(num / den)


def required_trials(
    pilot_samples: Sequence[float],
    *,
    target_se: float,
) -> int:
    """Trials needed so the standard error of the mean falls below target.

    Uses the pilot's sample standard deviation: ``n ≥ (s/target_se)²``.
    """
    arr = _check_samples(pilot_samples)
    if target_se <= 0:
        raise ValueError(f"target_se must be positive, got {target_se}")
    if arr.size < 2:
        raise ValueError("need at least 2 pilot samples")
    s = float(arr.std(ddof=1))
    if is_zero(s):
        return 1
    return int(np.ceil((s / target_se) ** 2))
