"""Algorithm PHF on the simulated machine (Figure 2, Section 3.1/3.4).

Phase 1 distributes bisection work across processors as soon as pieces
exist: a processor whose local piece exceeds ``T = w(p)·r_α/N`` bisects it,
acquires a free processor, ships one child there and keeps going with the
other child.  Two implementations of the free-processor acquisition are
provided, mirroring Section 3.4:

* ``phase1="central"`` -- the idealized constant-time acquire the paper's
  timing analysis assumes (cost ``t_acquire`` per call, default 0).
* ``phase1="ba_prime"`` -- the realisable scheme the paper outlines: run
  BA′ (range-managed, zero-overhead) so that only pieces assigned exactly
  one processor may still exceed T, then finish with a constant number of
  collective *peel rounds* in each of which every over-threshold piece is
  bisected and one child shipped to a numbered free processor.
* ``phase1="steal"`` -- randomized probing for free processors, the
  work-stealing-style distributed scheme the paper also mentions ([3]);
  each probe is charged as a control round-trip.

Phase 2 is the collective band-peeling loop of Figure 2 steps (c)-(h):
per iteration one max-reduction (d), one count/numbering (e), optionally
one selection (only when ``h > f``, which can happen in the last iteration
only), the parallel bisect+send, and a barrier (h).  Every collective is
charged ``c_coll·⌈log2 N⌉``.

The produced partition is *identical* to sequential HF's (Theorem 3) --
asserted in the integration tests for both phase-1 modes and both
keep-child policies.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.ba import ba_split
from repro.core.partition import Partition
from repro.core.phf import phf_threshold
from repro.core.problem import BisectableProblem, check_alpha
from repro.simulator.engine import SimulationError, Simulator
from repro.simulator.freeproc import (
    CentralManager,
    NumberedFreePool,
    RandomStealManager,
    RangeManager,
)
from repro.simulator.machine import Machine, MachineConfig
from repro.simulator.trace import SimulationResult

__all__ = ["simulate_phf"]


def simulate_phf(
    problem: BisectableProblem,
    n_processors: int,
    *,
    alpha: Optional[float] = None,
    config: Optional[MachineConfig] = None,
    phase1: str = "central",
    keep: str = "heavy",
    steal_seed: int = 0,
) -> SimulationResult:
    """Simulate PHF.

    Parameters
    ----------
    phase1:
        ``"central"``, ``"ba_prime"`` or ``"steal"`` (see module docstring).
    keep:
        Which child the bisecting processor keeps in phase 1: ``"heavy"``
        or ``"light"``.  The final partition is invariant; the makespan is
        not (an ablation knob for the runtime study).
    steal_seed:
        Seed for the randomized probing when ``phase1="steal"``.
    """
    if alpha is None:
        alpha = problem.alpha
    if alpha is None:
        raise ValueError(
            "PHF needs alpha; the problem does not declare one -- pass "
            "alpha= explicitly"
        )
    alpha = check_alpha(alpha)
    if phase1 not in ("central", "ba_prime", "steal"):
        raise ValueError(
            f"phase1 must be 'central', 'ba_prime' or 'steal', got {phase1!r}"
        )
    if keep not in ("heavy", "light"):
        raise ValueError(f"keep must be 'heavy' or 'light', got {keep!r}")
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")

    total = problem.weight
    threshold = phf_threshold(total, alpha, n_processors)
    machine = Machine(n_processors, config)
    pieces: Dict[int, BisectableProblem] = {}

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    if phase1 in ("central", "steal"):
        extra_rounds = _phase1_central(
            problem,
            machine,
            pieces,
            threshold,
            keep,
            mode=phase1,
            steal_seed=steal_seed,
        )
    else:
        extra_rounds = _phase1_ba_prime(
            problem, machine, pieces, threshold, keep
        )

    # (b) barrier, (c) count + number the free processors: two collectives.
    t = machine.collective(machine.makespan)
    t = machine.collective(t)
    phase1_end = t
    free_ids = [p for p in range(1, n_processors + 1) if p not in pieces]
    pool = NumberedFreePool(free_ids)

    # ------------------------------------------------------------------
    # Phase 2 (steps (c)-(h) of Figure 2)
    # ------------------------------------------------------------------
    f = len(free_ids)
    rounds = 0
    while f > 0:
        rounds += 1
        t = machine.collective(t)  # (d) m := max weight
        t = machine.collective(t)  # (e) h := band count + numbering
        m = max(q.weight for q in pieces.values())
        band = sorted(
            (proc for proc, q in pieces.items() if q.weight >= m * (1.0 - alpha)),
            key=lambda proc: (-pieces[proc].weight, proc),
        )
        h = len(band)
        if h > f:
            t = machine.collective(t)  # determine the f heaviest (selection)
            band = band[:f]
        destinations = pool.consume(len(band))
        finish = t
        for number, (proc, dst) in enumerate(zip(band, destinations), start=1):
            q1, q2 = pieces[proc].bisect()
            end_b = machine.bisect_at(proc, t)
            # resolve the id of the number-th free processor: one control
            # round-trip to the processor storing it (P_number).
            end_r = machine.control_request(proc, number, end_b)
            arrival = machine.send(proc, dst, end_r)
            machine.busy_until[dst - 1] = max(machine.busy_until[dst - 1], arrival)
            keep_piece, ship_piece = (q1, q2) if keep == "heavy" else (q2, q1)
            pieces[proc] = keep_piece
            pieces[dst] = ship_piece
            finish = max(finish, arrival)
        f -= min(h, f)
        if f > 0:
            t = machine.collective(finish)  # (h) barrier
        else:
            t = finish

    partition = Partition(
        pieces=[pieces[p] for p in sorted(pieces)],
        total_weight=total,
        n_processors=n_processors,
        algorithm="phf",
        num_bisections=machine.n_bisections,
        meta={
            "alpha": alpha,
            "threshold": threshold,
            "phase1_mode": phase1,
            "phase1_extra_rounds": extra_rounds,
            "phase2_rounds": rounds,
            "keep": keep,
        },
    )
    return SimulationResult(
        partition=partition,
        parallel_time=machine.makespan,
        n_messages=machine.n_messages,
        n_collectives=machine.n_collectives,
        collective_time=machine.collective_time,
        n_bisections=machine.n_bisections,
        utilization=machine.utilization(),
        n_control_messages=machine.n_control_messages,
        total_hops=machine.total_hops,
        events=machine.events,
        phases={
            "phase1": phase1_end,
            "phase2": machine.makespan - phase1_end,
        },
    )


# ----------------------------------------------------------------------
# Phase-1 strategies
# ----------------------------------------------------------------------


def _phase1_central(
    problem: BisectableProblem,
    machine: Machine,
    pieces: Dict[int, BisectableProblem],
    threshold: float,
    keep: str,
    *,
    steal_seed: int = 0,
    mode: str = "central",
) -> int:
    """Phase 1 with per-bisection free-processor acquisition.

    ``mode="central"``: idealized O(1) acquire (a central pool, the
    assumption of the paper's timing analysis).  ``mode="steal"``:
    randomized probing for a free processor (work-stealing style, [3]);
    every probe is charged as one control round-trip.
    """
    sim = Simulator()
    if mode == "steal":
        manager = RandomStealManager(machine.n, seed=steal_seed, first_busy=1)
    else:
        manager = CentralManager(machine.n, first_busy=1)

    def work(proc: int, q: BisectableProblem, t: float) -> None:
        if q.weight <= threshold:
            pieces[proc] = q
            return
        q1, q2 = q.bisect()
        end_b = machine.bisect_at(proc, t)
        try:
            if mode == "steal":
                dst, probes = manager.acquire()
                end_a = end_b
                for _ in range(probes):
                    # probe target is immaterial for the cost model; charge
                    # the round-trips against the prober
                    end_a = machine.control_request(
                        proc, dst if dst != proc else 1, end_a
                    )
            else:
                end_a = machine.acquire_free(proc, end_b)
                dst = manager.acquire()
        except RuntimeError as exc:  # invalid alpha voids Theorem 2
            raise SimulationError(
                "phase 1 ran out of free processors: the declared alpha is "
                "not a valid guarantee for this problem class"
            ) from exc
        arrival = machine.send(proc, dst, end_a)
        machine.busy_until[dst - 1] = max(machine.busy_until[dst - 1], arrival)
        keep_piece, ship_piece = (q1, q2) if keep == "heavy" else (q2, q1)
        sim.schedule_at(arrival, lambda: work(dst, ship_piece, arrival))
        sim.schedule_at(arrival, lambda: work(proc, keep_piece, arrival))

    sim.schedule(0.0, lambda: work(1, problem, 0.0))
    sim.run()
    return 0


def _phase1_ba_prime(
    problem: BisectableProblem,
    machine: Machine,
    pieces: Dict[int, BisectableProblem],
    threshold: float,
    keep: str,
) -> int:
    """Section 3.4's realisable phase 1: BA′ then collective peel rounds."""
    sim = Simulator()
    manager = RangeManager(machine.n)

    def handle(q: BisectableProblem, rng: Tuple[int, int], t: float) -> None:
        i, j = rng
        size = j - i + 1
        if size == 1 or q.weight <= threshold:
            pieces[i] = q
            return
        q1, q2 = q.bisect()
        end_b = machine.bisect_at(i, t)
        n1, _ = ba_split(q1.weight, q2.weight, size)
        r1, r2, dst = manager.split(rng, n1)
        arrival = machine.send(i, dst, end_b)
        machine.busy_until[dst - 1] = max(machine.busy_until[dst - 1], arrival)
        sim.schedule_at(arrival, lambda: handle(q2, r2, arrival))
        sim.schedule_at(end_b, lambda: handle(q1, r1, end_b))

    sim.schedule(0.0, lambda: handle(problem, manager.initial_range(), 0.0))
    sim.run()

    # Peel rounds: each round numbers the free processors (one collective)
    # and bisects every remaining over-threshold piece in parallel.  For
    # fixed alpha a constant number of rounds suffices (each round shrinks
    # the maximum remaining weight by (1-alpha)).
    extra_rounds = 0
    t = machine.makespan
    while True:
        heavy = sorted(p for p, q in pieces.items() if q.weight > threshold)
        if not heavy:
            break
        extra_rounds += 1
        t = machine.collective(t)  # number the free processors
        free = sorted(p for p in range(1, machine.n + 1) if p not in pieces)
        if len(free) < len(heavy):
            raise SimulationError(
                "phase 1 peel round ran out of free processors: the "
                "declared alpha is not a valid guarantee for this class"
            )
        finish = t
        for proc, dst in zip(heavy, free):
            q1, q2 = pieces[proc].bisect()
            end_b = machine.bisect_at(proc, t)
            arrival = machine.send(proc, dst, end_b)
            machine.busy_until[dst - 1] = max(machine.busy_until[dst - 1], arrival)
            keep_piece, ship_piece = (q1, q2) if keep == "heavy" else (q2, q1)
            pieces[proc] = keep_piece
            pieces[dst] = ship_piece
            finish = max(finish, arrival)
        t = finish
    return extra_rounds
