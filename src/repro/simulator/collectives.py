"""Collective-operation cost models.

The paper assumes global operations (barrier, broadcast, max-reduction,
counting/prefix, selection) complete in ``O(log N)`` -- "satisfied by the
idealized PRAM model, which can be simulated on many realistic
architectures with at most logarithmic slowdown".  The default machine
model charges ``c·⌈log2 N⌉`` accordingly.

Real interconnects differ, so the cost model is pluggable: a latency-heavy
cluster is closer to ``a + b·log N``; a bus-based machine to ``a + b·N``.
The runtime study uses these to show where PHF's collective-per-iteration
structure starts to hurt relative to BA's communication-free recursion --
the trade-off the paper's conclusion discusses qualitatively.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.utils.mathutils import ilog2

__all__ = [
    "CollectiveModel",
    "LogCost",
    "LinearCost",
    "ConstantCost",
]


class CollectiveModel(ABC):
    """Maps a participant count to the duration of one global operation."""

    @abstractmethod
    def cost(self, n: int) -> float:
        """Duration of a collective over ``n`` processors (n ≥ 1)."""

    def __call__(self, n: int) -> float:
        if n < 1:
            raise ValueError(f"participant count must be >= 1, got {n}")
        value = self.cost(n)
        if value < 0:
            raise ValueError(f"cost model produced negative cost {value}")
        return value


@dataclass(frozen=True)
class LogCost(CollectiveModel):
    """``latency + scale · ⌈log2 N⌉`` -- the paper's model (default)."""

    scale: float = 1.0
    latency: float = 0.0

    def cost(self, n: int) -> float:
        return self.latency + self.scale * ilog2(n)


@dataclass(frozen=True)
class LinearCost(CollectiveModel):
    """``latency + scale · (N-1)`` -- bus-like machines, for ablation."""

    scale: float = 1.0
    latency: float = 0.0

    def cost(self, n: int) -> float:
        return self.latency + self.scale * (n - 1)


@dataclass(frozen=True)
class ConstantCost(CollectiveModel):
    """Fixed-cost collectives (hardware barriers / all-reduce offload)."""

    value: float = 1.0

    def cost(self, n: int) -> float:
        return self.value
