"""Sweep runner: algorithms × processor counts → summary records.

A *sweep* evaluates a :class:`~repro.experiments.config.StochasticConfig`
and produces one :class:`SweepRecord` per (algorithm, N) cell: observed
min/avg/max/variance plus the worst-case upper bound computed from the
theorems at the sampler's guaranteed α -- exactly the rows of the paper's
Table 1.

Trial-level parallelism uses ``concurrent.futures.ProcessPoolExecutor``
(each worker re-derives its own seeds, so results are identical to the
serial run; see the guides' advice to parallelise only embarrassingly
parallel outer loops).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.bounds import bound_for
from repro.core.metrics import RatioSample, summarize_ratios
from repro.experiments.config import StochasticConfig
from repro.experiments.stochastic import trial_ratios
from repro.problems.samplers import AlphaSampler

__all__ = ["SweepRecord", "SweepResult", "run_sweep"]


@dataclass(frozen=True)
class SweepRecord:
    """One (algorithm, N) cell of a sweep."""

    algorithm: str
    n_processors: int
    sampler_label: str
    lam: float
    sample: RatioSample
    upper_bound: float

    def as_dict(self) -> dict:
        d = {
            "algorithm": self.algorithm,
            "n": self.n_processors,
            "sampler": self.sampler_label,
            "lambda": self.lam,
            "ub": self.upper_bound,
        }
        d.update(self.sample.as_dict())
        return d


@dataclass(frozen=True)
class SweepResult:
    """All records of a sweep plus the config that produced them."""

    config: StochasticConfig
    records: Tuple[SweepRecord, ...]

    def get(self, algorithm: str, n: int) -> SweepRecord:
        for rec in self.records:
            if rec.algorithm == algorithm and rec.n_processors == n:
                return rec
        raise KeyError(f"no record for ({algorithm}, {n})")

    def series(self, algorithm: str, field: str = "mean") -> List[Tuple[int, float]]:
        """``(N, value)`` pairs for one algorithm, ascending N.

        ``field`` is an attribute of :class:`RatioSample` ("mean",
        "minimum", "maximum", "variance", "std") or "upper_bound".
        """
        out = []
        for rec in sorted(self.records, key=lambda r: r.n_processors):
            if rec.algorithm != algorithm:
                continue
            if field == "upper_bound":
                out.append((rec.n_processors, rec.upper_bound))
            else:
                out.append((rec.n_processors, getattr(rec.sample, field)))
        return out

    def algorithms(self) -> List[str]:
        seen: List[str] = []
        for rec in self.records:
            if rec.algorithm not in seen:
                seen.append(rec.algorithm)
        return seen


def _run_cell(
    args: Tuple[str, int, AlphaSampler, int, int, float]
) -> Tuple[str, int, np.ndarray]:
    """Worker: all trials of one (algorithm, N) cell (picklable)."""
    algorithm, n, sampler, n_trials, seed, lam = args
    ratios = trial_ratios(
        algorithm, n, sampler, n_trials=n_trials, seed=seed, lam=lam
    )
    return algorithm, n, ratios


def run_sweep(config: StochasticConfig) -> SweepResult:
    """Evaluate every (algorithm, N) cell of ``config``."""
    cells = [
        (algo, n, config.sampler, config.n_trials, config.seed, config.lam)
        for algo in config.algorithms
        for n in config.n_values
    ]
    if config.n_jobs > 1 and len(cells) > 1:
        with ProcessPoolExecutor(max_workers=config.n_jobs) as pool:
            raw = list(pool.map(_run_cell, cells))
    else:
        raw = [_run_cell(cell) for cell in cells]

    alpha = config.sampler.alpha
    records = []
    for algorithm, n, ratios in raw:
        records.append(
            SweepRecord(
                algorithm=algorithm,
                n_processors=n,
                sampler_label=config.sampler.describe(),
                lam=config.lam,
                sample=summarize_ratios(ratios),
                upper_bound=bound_for(algorithm, alpha, n, config.lam),
            )
        )
    return SweepResult(config=config, records=tuple(records))
