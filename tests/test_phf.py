"""Unit tests for Algorithm PHF (Figure 2, Theorem 3).

The headline property -- PHF produces *exactly* the partition of
sequential HF -- is tested here for the logical implementation and in
``test_phf_sim.py`` for the machine simulation.
"""

import pytest

from repro.core import (
    phf_phase1_max_depth,
    phf_phase2_max_iterations,
    phf_threshold,
    r_alpha,
    run_hf,
    run_phf,
)
from repro.problems import FixedAlpha, SyntheticProblem, UniformAlpha


class TestThreshold:
    def test_formula(self):
        assert phf_threshold(2.0, 0.1, 10) == pytest.approx(2.0 * r_alpha(0.1) / 10)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            phf_threshold(0.0, 0.1, 10)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            phf_threshold(1.0, 0.1, 0)


class TestPHFEqualsHF:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 17, 64, 200, 256])
    def test_same_partition_synthetic(self, n):
        sampler = UniformAlpha(0.1, 0.5)
        p1 = SyntheticProblem(1.0, sampler, seed=1000 + n)
        p2 = SyntheticProblem(1.0, sampler, seed=1000 + n)
        assert run_phf(p1, n).same_pieces_as(run_hf(p2, n))

    @pytest.mark.parametrize("seed", range(8))
    def test_same_partition_wide_interval(self, seed):
        sampler = UniformAlpha(0.01, 0.5)
        p1 = SyntheticProblem(1.0, sampler, seed=seed)
        p2 = SyntheticProblem(1.0, sampler, seed=seed)
        assert run_phf(p1, 100).same_pieces_as(run_hf(p2, 100))

    def test_same_partition_fixed_alpha(self):
        p1 = SyntheticProblem(1.0, FixedAlpha(0.25), seed=0)
        p2 = SyntheticProblem(1.0, FixedAlpha(0.25), seed=0)
        assert run_phf(p1, 48).same_pieces_as(run_hf(p2, 48))

    def test_same_partition_list_problem(self):
        from repro.problems import ListProblem

        # random-pivot lists: alpha guarantee derived from element count
        p1 = ListProblem.uniform(4096, seed=5)
        p2 = ListProblem.uniform(4096, seed=5)
        phf = run_phf(p1, 16, alpha=1 / 4096)
        hf = run_hf(p2, 16)
        assert phf.same_pieces_as(hf)


class TestPHFStructure:
    def test_total_bisections(self, synthetic_problem):
        part = run_phf(synthetic_problem, 64)
        assert part.num_bisections == 63
        assert (
            part.meta["phase1_bisections"] + part.meta["phase2_bisections"] == 63
        )

    def test_phase1_leaves_below_threshold(self, uniform_sampler):
        p = SyntheticProblem(1.0, uniform_sampler, seed=2)
        part = run_phf(p, 64)
        threshold = part.meta["threshold"]
        # final pieces are all at most the phase-1 threshold (Theorem 2)
        assert max(part.weights) <= threshold + 1e-12

    def test_round_counts_within_paper_bounds(self):
        sampler = UniformAlpha(0.1, 0.5)
        alpha = sampler.alpha
        for n in (32, 128, 512):
            p = SyntheticProblem(1.0, sampler, seed=n)
            part = run_phf(p, n)
            assert part.meta["phase1_rounds"] <= phf_phase1_max_depth(alpha, n)
            assert part.meta["phase2_rounds"] <= phf_phase2_max_iterations(alpha)

    def test_band_sizes_recorded(self, synthetic_problem):
        part = run_phf(synthetic_problem, 64)
        assert len(part.meta["band_sizes"]) == part.meta["phase2_rounds"]
        assert all(h >= 1 for h in part.meta["band_sizes"])

    def test_single_processor(self, synthetic_problem):
        part = run_phf(synthetic_problem, 1)
        assert len(part.pieces) == 1
        assert part.meta["phase1_rounds"] == 0
        assert part.meta["phase2_rounds"] == 0

    def test_two_processors(self, uniform_sampler):
        p = SyntheticProblem(1.0, uniform_sampler, seed=3)
        part = run_phf(p, 2)
        assert len(part.pieces) == 2

    def test_tree_recording(self, synthetic_problem):
        part = run_phf(synthetic_problem, 32, record_tree=True)
        part.validate()
        assert part.tree.num_leaves == 32


class TestPHFErrors:
    def test_requires_alpha(self):
        from repro.problems import ListProblem

        lp = ListProblem.uniform(64, seed=0)
        with pytest.raises(ValueError, match="alpha"):
            run_phf(lp, 8)

    def test_invalid_alpha_guarantee_detected(self):
        # claim alpha = 0.4 for a class that actually produces 0.1-splits:
        # the checked bisection must raise, not silently mis-balance
        p = SyntheticProblem(1.0, FixedAlpha(0.1), seed=0)
        with pytest.raises(ValueError, match="guarantee|processors"):
            run_phf(p, 64, alpha=0.4)

    def test_rejects_zero_processors(self, synthetic_problem):
        with pytest.raises(ValueError):
            run_phf(synthetic_problem, 0)
