"""Rule plugin registry.

Rules self-register at import time via the :func:`register` decorator;
the engine iterates :func:`all_rules` and the policy layer selects the
subset enabled for a file's profile.  Registering two rules under the
same ID is a programming error and raises immediately.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple, Type

from repro.lint.findings import Finding

__all__ = [
    "LintContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
]

_RULE_ID_RE = re.compile(r"^R\d{3}$")


@dataclass
class LintContext:
    """Everything a rule may consult about the module under analysis.

    ``aliases`` maps local names to canonical dotted import paths, e.g.
    ``{"np": "numpy", "default_rng": "numpy.random.default_rng"}`` --
    built once per module by the engine so every rule resolves
    ``np.random.X`` and ``from numpy.random import X`` uniformly.
    """

    path: str
    source: str
    tree: ast.Module
    profile: str = "strict"
    aliases: Dict[str, str] = field(default_factory=dict)
    lines: Tuple[str, ...] = ()

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, or None.

        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"`` when ``np`` aliases ``numpy``.
        Chains rooted in anything other than a recorded import resolve
        to their literal dotted spelling (so ``time.time`` still works
        when ``import time`` recorded ``time -> time``).
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding findings.  ``rule_id`` must match ``R\\d{3}``; ``rationale``
    feeds the generated rule catalog and ``bad``/``good`` give the
    minimal failing and fixed snippets shown in docs and exercised by
    the per-rule unit tests.

    ``scope`` is ``"module"`` for classic single-file rules (the
    engine's per-file pass) and ``"project"`` for whole-program passes
    (see :class:`ProjectRule`); the per-file engine skips project
    rules and the project pass skips module rules.
    """

    rule_id: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""
    bad: str = ""
    good: str = ""
    scope: str = "module"

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: LintContext, node: ast.AST, message: str) -> Finding:
        """Build a finding for ``node`` with this rule's ID."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
            profile=ctx.profile,
        )


class ProjectRule(Rule):
    """Base class for whole-program rules (R1xx).

    Project rules see a :class:`repro.lint.project.ProjectContext`
    (symbol table, call graph, companion C sources) instead of one
    module, and implement :meth:`check_project`.  ``bad_tree`` /
    ``good_tree`` optionally give a multi-file fixture (path -> source)
    for rules whose minimal violation spans modules or a C/Python
    boundary; when empty, the single-file ``bad``/``good`` snippets are
    used as a one-module project by the catalog tests.
    """

    scope = "project"
    #: optional multi-file fixtures: relative path -> file contents
    bad_tree: Mapping[str, str] = {}
    good_tree: Mapping[str, str] = {}

    def check(self, ctx: LintContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: "object") -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding pinned to ``node`` in the file at ``path``."""
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID_RE.match(cls.rule_id):
        raise ValueError(f"bad rule id {cls.rule_id!r} on {cls.__name__}")
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls()
    return cls


def all_rules() -> Mapping[str, Rule]:
    """Registered rules keyed by ID (insertion-ordered)."""
    return dict(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Look up one rule; raises KeyError for unknown IDs."""
    return _REGISTRY[rule_id]


def rule_ids() -> List[str]:
    """Sorted list of registered rule IDs."""
    return sorted(_REGISTRY)
