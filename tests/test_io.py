"""Unit tests for sweep persistence (JSON round-trip)."""

import json

import pytest

from repro.experiments.config import StochasticConfig
from repro.experiments.io import (
    load_sweep,
    save_sweep,
    sweep_from_json,
    sweep_to_json,
)
from repro.experiments.runner import run_sweep
from repro.experiments.tables import format_table1
from repro.problems import BetaAlpha, DiscreteAlpha, FixedAlpha, UniformAlpha


@pytest.fixture(scope="module")
def sweep():
    cfg = StochasticConfig(
        sampler=UniformAlpha(0.1, 0.5),
        n_values=(32, 64),
        algorithms=("hf", "ba"),
        n_trials=12,
        seed=4,
    )
    return run_sweep(cfg)


class TestRoundTrip:
    def test_records_identical(self, sweep):
        clone = sweep_from_json(sweep_to_json(sweep))
        assert len(clone.records) == len(sweep.records)
        for a, b in zip(sweep.records, clone.records):
            assert a.algorithm == b.algorithm
            assert a.n_processors == b.n_processors
            assert a.upper_bound == pytest.approx(b.upper_bound)
            assert a.sample.mean == pytest.approx(b.sample.mean)
            assert a.sample.variance == pytest.approx(b.sample.variance)

    def test_config_identical(self, sweep):
        clone = sweep_from_json(sweep_to_json(sweep))
        assert clone.config.sampler == sweep.config.sampler
        assert clone.config.n_values == sweep.config.n_values
        assert clone.config.n_trials == sweep.config.n_trials

    def test_reloaded_sweep_renders(self, sweep):
        clone = sweep_from_json(sweep_to_json(sweep))
        assert format_table1(clone) == format_table1(sweep)

    def test_file_round_trip(self, sweep, tmp_path):
        path = save_sweep(sweep, tmp_path / "sweep.json")
        clone = load_sweep(path)
        assert clone.get("hf", 32).sample.mean == pytest.approx(
            sweep.get("hf", 32).sample.mean
        )

    def test_json_is_valid_and_versioned(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        assert payload["format_version"] == 1
        assert len(payload["records"]) == 4


class TestSamplerSerialisation:
    @pytest.mark.parametrize(
        "sampler",
        [
            UniformAlpha(0.05, 0.4),
            FixedAlpha(0.3),
            BetaAlpha(2.0, 3.0, low=0.1, high=0.45),
            DiscreteAlpha(values=(0.1, 0.3), probabilities=(0.25, 0.75)),
        ],
    )
    def test_all_sampler_kinds(self, sampler):
        cfg = StochasticConfig(
            sampler=sampler,
            n_values=(16,),
            algorithms=("hf",),
            n_trials=3,
            seed=1,
        )
        sweep = run_sweep(cfg)
        clone = sweep_from_json(sweep_to_json(sweep))
        assert clone.config.sampler == sampler


class TestErrors:
    def test_wrong_version_rejected(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            sweep_from_json(json.dumps(payload))

    def test_unknown_sampler_kind_rejected(self, sweep):
        payload = json.loads(sweep_to_json(sweep))
        payload["config"]["sampler"] = {"kind": "cauchy"}
        with pytest.raises(ValueError, match="sampler kind"):
            sweep_from_json(json.dumps(payload))


class TestCliJson:
    def test_cli_writes_reloadable_json(self, tmp_path, capsys):
        from repro.experiments.cli import main

        target = tmp_path / "t1.json"
        assert (
            main(
                [
                    "table1",
                    "--trials",
                    "3",
                    "--max-n",
                    "64",
                    "--json",
                    str(target),
                ]
            )
            == 0
        )
        clone = load_sweep(target)
        assert clone.config.n_trials == 3


class TestWriteAtomic:
    def test_writes_text(self, tmp_path):
        from repro.experiments.io import write_atomic

        target = tmp_path / "out.txt"
        assert write_atomic(target, "hello\n") == target
        assert target.read_text() == "hello\n"

    def test_overwrites_whole_file(self, tmp_path):
        from repro.experiments.io import write_atomic

        target = tmp_path / "out.txt"
        target.write_text("x" * 1000)
        write_atomic(target, "short")
        assert target.read_text() == "short"

    def test_leaves_no_temp_files(self, tmp_path):
        from repro.experiments.io import write_atomic

        target = tmp_path / "out.txt"
        write_atomic(target, "data")
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_missing_directory_raises_oserror(self, tmp_path):
        from repro.experiments.io import write_atomic

        with pytest.raises(OSError):
            write_atomic(tmp_path / "nope" / "out.txt", "data")

    def test_failure_cleans_up_temp(self, tmp_path, monkeypatch):
        import os as _os

        from repro.experiments import io as io_mod

        def boom(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(io_mod.os, "replace", boom)
        target = tmp_path / "out.txt"
        with pytest.raises(OSError, match="disk on fire"):
            io_mod.write_atomic(target, "data")
        assert list(tmp_path.iterdir()) == []

    def test_writer_callable_streams_content(self, tmp_path):
        from repro.experiments.io import write_atomic

        target = tmp_path / "out.json"
        write_atomic(target, lambda fh: json.dump({"a": 1}, fh))
        assert json.loads(target.read_text()) == {"a": 1}

    def test_raising_writer_cleans_up_and_keeps_old_file(self, tmp_path):
        from repro.experiments.io import write_atomic

        target = tmp_path / "out.json"
        target.write_text("old")

        def bad_writer(fh):
            fh.write("partial")
            raise ValueError("serialisation exploded")

        with pytest.raises(ValueError, match="serialisation exploded"):
            write_atomic(target, bad_writer)
        # the old artifact survives and no .tmp file accumulates
        assert target.read_text() == "old"
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_fdopen_failure_closes_fd_and_cleans_up(self, tmp_path, monkeypatch):
        import os as _os

        from repro.experiments import io as io_mod

        real_fdopen = _os.fdopen
        opened = {}

        def boom(fd, *args, **kwargs):
            opened["fd"] = fd
            raise OSError("out of handles")

        monkeypatch.setattr(io_mod.os, "fdopen", boom)
        with pytest.raises(OSError, match="out of handles"):
            io_mod.write_atomic(tmp_path / "out.txt", "data")
        assert list(tmp_path.iterdir()) == []
        # the mkstemp fd was closed on the failure path
        with pytest.raises(OSError):
            real_fdopen(opened["fd"], "w")
