"""Small integer/float helpers shared across the library."""

from __future__ import annotations

import math

__all__ = [
    "ceil_div",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
    "feq",
    "is_zero",
]

#: Default relative tolerance for float comparisons: weights and ratios
#: accumulate O(n) rounding steps, so 1e-9 is comfortably above double
#: rounding noise yet far below any physically meaningful difference.
DEFAULT_REL_TOL = 1e-9

#: Default absolute tolerance for comparisons against zero.
DEFAULT_ABS_TOL = 1e-12


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def ilog2(n: int) -> int:
    """``⌈log2 n⌉`` for ``n ≥ 1`` (0 for ``n == 1``).

    This is the exponent used by the logarithmic-cost collective model:
    a collective over ``n`` processors costs ``c · ilog2(n)`` time units.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (n - 1).bit_length()


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``≥ n`` (``n ≥ 1``)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << ilog2(n)


def feq(
    a: float,
    b: float,
    *,
    rel_tol: float = DEFAULT_REL_TOL,
    abs_tol: float = DEFAULT_ABS_TOL,
) -> bool:
    """Tolerance-based float equality (the R004-sanctioned ``==``).

    Weights and ratios accumulate rounding differently along different
    merge orders, so exact ``==`` makes results depend on ``n_jobs``;
    every float equality test in core/metrics code routes through here.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(x: float, *, abs_tol: float = DEFAULT_ABS_TOL) -> bool:
    """Whether ``x`` is zero up to absolute tolerance ``abs_tol``.

    Relative tolerance is meaningless against zero, so this is a pure
    absolute-threshold test (``abs_tol=0.0`` recovers exact ``== 0``).
    """
    return abs(x) <= abs_tol
