"""Deterministic OS-level chaos for the real experiment harness.

Where :mod:`repro.resilience` injects faults into the *simulated*
machines, this package injects them into the *actual* runs: SIGKILLed
pool workers, hung chunks, transient exceptions, delayed results
(:mod:`repro.chaos.plan` / :mod:`repro.chaos.injectors`), and torn
journal/artifact writes that end the process at a chosen byte
(:mod:`repro.chaos.crashpoints`).  All of it is bit-reproducible: fault
schedules are pure functions of ``(config, keys, seed)`` drawn from
SplitMix64 child streams, the same discipline every other random draw in
the repo follows.

The consumer is the supervised executor in
:mod:`repro.experiments.checkpoint`, which accepts a
:class:`ChaosSpec`/:class:`ChaosPlan` and must finish the run --
bit-identically to the fault-free execution -- while a
:class:`RunReport` accounts for every chunk.
"""

from repro.chaos.injectors import ChaosError, ChaosTransientError, chaos_call
from repro.chaos.plan import (
    CHAOS_PROFILES,
    FAULT_KINDS,
    ChaosConfig,
    ChaosPlan,
    ChaosSpec,
    chaos_plan_for,
)
from repro.chaos.report import RunReport

__all__ = [
    "CHAOS_PROFILES",
    "FAULT_KINDS",
    "ChaosConfig",
    "ChaosPlan",
    "ChaosSpec",
    "ChaosError",
    "ChaosTransientError",
    "RunReport",
    "chaos_call",
    "chaos_plan_for",
]
