#!/usr/bin/env python
"""Quick calibrated smoke benchmark, gating against a committed baseline.

Measures the throughput of the hot paths (batched HF/BA/BA-HF kernels
and the PHF closed-form fastpath, pinned to one kernel thread, plus a
multithreaded BA-HF entry at the auto-detected count) at a small scale
(N = 4096)
that finishes in seconds, and writes a ``BENCH_*.json``-schema artifact.
Each entry is *calibrated* -- the trial count is sized so one
measurement takes ~``TARGET_SECONDS`` -- and reported as the best of
``REPEATS`` runs, which keeps the rates stable enough to gate on with a
generous relative threshold even on a busy box::

    PYTHONPATH=src python tools/bench_smoke.py --check --threshold 50
    PYTHONPATH=src python tools/bench_smoke.py --update-baseline

``--check`` re-measures and diffs against the committed baseline
(``benchmarks/results/BENCH_smoke.json``) via ``tools/bench_compare.py``,
exiting non-zero when any ``trials_per_s`` drops by more than the
threshold -- the standing perf gate wired into ``tools/check.sh``.
Regenerate the baseline with ``--update-baseline`` after intentional
performance changes (on the machine recorded in the artifact;
cross-machine comparisons are warned about, not failed).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, Optional, Sequence

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import bench_compare

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

BASELINE_PATH = REPO_ROOT / "benchmarks" / "results" / "BENCH_smoke.json"

N_PROCESSORS = 4096
SEED = 20260806
#: Wall-clock target per calibrated measurement.
TARGET_SECONDS = 0.4
#: Trials used for the calibration probe.
PROBE_TRIALS = 16
#: Measurements per entry; the best rate is reported (minimum-noise
#: estimator for a deterministic computation on a shared box).
REPEATS = 3


def _entries() -> Dict[str, Callable[[int], None]]:
    """name -> fn(n_trials) for every smoke-benchmarked hot path."""
    from repro.experiments.runtime_study import study_trial_metrics
    from repro.experiments.stochastic import trial_ratios
    from repro.problems import UniformAlpha
    from repro.simulator import MachineConfig

    sampler = UniformAlpha(0.1, 0.5)

    # Single-thread entries are pinned to n_threads=1 so the committed
    # baseline stays comparable across boxes with different core counts;
    # the "_mt" entry measures the in-kernel trial-block threading at
    # the auto-detected count (bit-identical, only faster).
    def batch(algorithm, n_threads=1):
        def run(n_trials):
            trial_ratios(
                algorithm,
                N_PROCESSORS,
                sampler,
                n_trials=n_trials,
                seed=SEED,
                use_batch=True,
                n_threads=n_threads,
            )

        return run

    def phf_fastpath(n_trials):
        study_trial_metrics(
            "phf",
            N_PROCESSORS,
            sampler,
            n_trials=n_trials,
            seed=SEED,
            config=MachineConfig(),
            engine="fastpath",
            n_threads=1,
        )

    from repro.core._native import resolve_n_threads

    return {
        "hf_batch": batch("hf"),
        "ba_batch": batch("ba"),
        "bahf_batch": batch("bahf"),
        "phf_fastpath": phf_fastpath,
        "bahf_batch_mt": batch("bahf", n_threads=resolve_n_threads()),
    }


def _calibrated_rate(fn: Callable[[int], None]) -> Dict[str, float]:
    fn(PROBE_TRIALS)  # warm (compiles/loads the native kernels once)
    start = time.perf_counter()
    fn(PROBE_TRIALS)
    probe = time.perf_counter() - start
    n_trials = max(PROBE_TRIALS, int(PROBE_TRIALS * TARGET_SECONDS / probe))
    best = 0.0
    for _ in range(REPEATS):
        start = time.perf_counter()
        fn(n_trials)
        rate = n_trials / (time.perf_counter() - start)
        best = max(best, rate)
    return {"n_trials": n_trials, "trials_per_s": best}


def run_smoke() -> Dict:
    """Measure every entry and return a BENCH_*-schema payload."""
    from _common import BENCH_SCHEMA_VERSION, machine_meta

    entries = {}
    for name, fn in _entries().items():
        entries[name] = {"name": name, **_calibrated_rate(fn)}
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "n_processors": N_PROCESSORS,
        "seed": SEED,
        "target_seconds": TARGET_SECONDS,
        "repeats": REPEATS,
        "machine": machine_meta(),
        "entries": entries,
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bench_smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare against the baseline and exit non-zero on regression",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help=f"write the measurement to {BASELINE_PATH}",
    )
    parser.add_argument(
        "--baseline",
        default=str(BASELINE_PATH),
        help="baseline artifact for --check (default: the committed one)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=50.0,
        help="max tolerated trials_per_s drop, percent (default 50)",
    )
    parser.add_argument(
        "--output", help="also write the measurement JSON to this path"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.check and not pathlib.Path(args.baseline).is_file():
        print(
            f"no baseline at {args.baseline} "
            "(run with --update-baseline first)",
            file=sys.stderr,
        )
        return 2
    payload = run_smoke()
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        pathlib.Path(args.output).write_text(text)
    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(text)
        print(f"baseline written: {BASELINE_PATH}")
    if not args.check:
        if not args.update_baseline:
            print(text, end="")
        return 0

    baseline = bench_compare.load_artifact(args.baseline)
    lines, regressions, warnings = bench_compare.compare_artifacts(
        baseline,
        payload,
        metrics=["trials_per_s"],
        threshold_pct=args.threshold,
    )
    thread_warns = bench_compare.threading_warnings(baseline, payload)
    if thread_warns and regressions:
        # A different in-kernel thread count moves the _mt rates by
        # design; that is a configuration change, not a perf regression.
        warnings.append(
            f"{len(regressions)} drop(s) demoted to warnings "
            "(cross-thread-count comparison)"
        )
        warnings.extend(f"(not gated) {reg}" for reg in regressions)
        regressions = []
    warnings = (
        bench_compare.compatibility_warnings(baseline, payload)
        + thread_warns
        + warnings
    )
    print(f"baseline : {args.baseline}")
    print(f"threshold: -{args.threshold:.0f}% on trials_per_s")
    for line in lines:
        print(line)
    for warning in warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if regressions:
        print(f"\nFAIL: {len(regressions)} perf regression(s)", file=sys.stderr)
        for reg in regressions:
            print(f"  {reg}", file=sys.stderr)
        return 1
    print("\nOK: smoke throughput within threshold of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
