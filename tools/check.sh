#!/usr/bin/env bash
# Repo gate: tier-1 tests, then the determinism/numerical-safety linter.
#
#   tools/check.sh            # human output
#   LINT_FORMAT=text tools/check.sh
#
# Exits non-zero if either stage fails, so it can serve directly as a CI
# job or pre-push hook.  The lint stage covers tests/ too (the pytest
# self-check gate only covers src/benchmarks/examples).

set -euo pipefail

cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest =="
python -m pytest -x -q

echo "== static analysis: repro.lint =="
python -m repro.lint src tests benchmarks examples --format "${LINT_FORMAT:-json}"

echo "== smoke: runtime study, both engines =="
# The fastpath kernels must render the same study as the DES oracle.
des_out=$(python -m repro.experiments.cli runtime --max-n 32 --engine des)
fast_out=$(python -m repro.experiments.cli runtime --max-n 32 --engine fastpath)
if [ "$des_out" != "$fast_out" ]; then
    echo "engine mismatch: des and fastpath render different studies" >&2
    exit 1
fi

echo "== smoke: bench_compare self-diff =="
# A benchmark artifact compared against itself must report no regression.
if [ -f benchmarks/results/BENCH_fastpath.json ]; then
    python tools/bench_compare.py \
        benchmarks/results/BENCH_fastpath.json \
        benchmarks/results/BENCH_fastpath.json > /dev/null
fi

echo "== all checks passed =="
