"""Experiment E3 -- dependence of the average ratio on the α̂ interval and N.

Paper, Section 4: "the average ratio obtained from Algorithm HF was
observed to be almost constant for the whole range of N = 32 to
N = 2^20.  Its exact value depended only on the particular choice of the
interval [a, b].  Only when the range for the bisection parameter was very
small (b - a smaller than 0.1), the observed ratios varied with the number
of processors."

The study sweeps several intervals -- wide and narrow -- and reports, per
interval and algorithm, the *spread* of the mean ratio across N (max mean
minus min mean): small for wide intervals, noticeably larger for narrow
ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import DEFAULT_N_VALUES, StochasticConfig
from repro.experiments.runner import SweepResult, run_sweep
from repro.problems.samplers import UniformAlpha

__all__ = [
    "WIDE_INTERVALS",
    "NARROW_INTERVALS",
    "IntervalStudyResult",
    "run_interval_study",
    "render_interval_study",
]

WIDE_INTERVALS: Tuple[Tuple[float, float], ...] = (
    (0.01, 0.5),
    (0.1, 0.5),
    (0.2, 0.5),
    (0.3, 0.5),
)

#: b - a < 0.1: the paper's "very small range" regime.
NARROW_INTERVALS: Tuple[Tuple[float, float], ...] = (
    (0.45, 0.5),
    (0.3, 0.35),
    (0.05, 0.1),
)


@dataclass(frozen=True)
class IntervalStudyResult:
    intervals: Tuple[Tuple[float, float], ...]
    sweeps: Dict[Tuple[float, float], SweepResult]

    def mean_series(
        self, interval: Tuple[float, float], algorithm: str
    ) -> List[Tuple[int, float]]:
        return self.sweeps[interval].series(algorithm, "mean")

    def flatness(self, interval: Tuple[float, float], algorithm: str) -> float:
        """Spread of the mean ratio across N: max - min (0 = flat)."""
        means = [v for _, v in self.mean_series(interval, algorithm)]
        return max(means) - min(means)


def run_interval_study(
    *,
    intervals: Optional[Sequence[Tuple[float, float]]] = None,
    algorithms: Sequence[str] = ("hf", "bahf", "ba"),
    n_trials: int = 500,
    n_values: Optional[Sequence[int]] = None,
    seed: int = 20260706,
    n_jobs: int = 1,
) -> IntervalStudyResult:
    iv = (
        tuple(intervals)
        if intervals is not None
        else WIDE_INTERVALS + NARROW_INTERVALS
    )
    values = tuple(n_values) if n_values is not None else DEFAULT_N_VALUES
    sweeps: Dict[Tuple[float, float], SweepResult] = {}
    for a, b in iv:
        config = StochasticConfig(
            sampler=UniformAlpha(a, b),
            n_values=values,
            algorithms=tuple(algorithms),
            n_trials=n_trials,
            seed=seed,
            n_jobs=n_jobs,
        )
        sweeps[(a, b)] = run_sweep(config)
    return IntervalStudyResult(intervals=iv, sweeps=sweeps)


def render_interval_study(result: IntervalStudyResult) -> str:
    lines = [
        "Interval study -- mean ratio per interval; 'spread' = max-min over N",
        "",
    ]
    for interval in result.intervals:
        sweep = result.sweeps[interval]
        a, b = interval
        kind = "narrow" if (b - a) < 0.1 else "wide"
        lines.append(f"U[{a:g},{b:g}]  ({kind}, width {b - a:g})")
        for algo in sweep.algorithms():
            series = result.mean_series(interval, algo)
            values = " ".join(f"{v:6.3f}" for _, v in series)
            lines.append(
                f"  {algo:>5}: {values}   spread={result.flatness(interval, algo):.3f}"
            )
        lines.append("")
    return "\n".join(lines)
