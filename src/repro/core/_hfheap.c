/* Hold-back 8-ary max-heap kernel for batched HF trials.
 *
 * One call advances a whole batch: trial i reads its alpha-hat draws from
 * row i of `draws` and writes its N final weights into row i of `out`.
 * The heap lives directly in the output row (slots 0..n-2); the running
 * maximum is held back in a register and written to slot n-1 at the end.
 *
 * Exactness contract: children are computed as a*w and (1.0-a)*w -- the
 * same IEEE-754 operations, in the same order, as the scalar Python fast
 * path -- and heap ordering only permutes equal-weight pops, which leaves
 * the final weight multiset unchanged.  Must NOT be compiled with
 * -ffast-math or the products may be contracted/reassociated.
 */

static void hf_one(const double *draws, double *heap, double w0, long n)
{
    double cur = w0;
    long size = 0;
    long k;

    for (k = 0; k < n - 1; ++k) {
        double a = draws[k];
        double c1 = a * cur;
        double c2 = (1.0 - a) * cur;
        double big, small;
        long i;

        if (c1 > c2) {
            big = c1;
            small = c2;
        } else {
            big = c2;
            small = c1;
        }

        /* Push the small child. */
        i = size++;
        while (i > 0) {
            long p = (i - 1) >> 3;
            if (heap[p] >= small)
                break;
            heap[i] = heap[p];
            i = p;
        }
        heap[i] = small;

        /* The big child usually stays the maximum; otherwise swap it
         * with the root and sift it down (8-ary: depth ~log8 N). */
        if (big >= heap[0]) {
            cur = big;
            continue;
        }
        cur = heap[0];
        i = 0;
        for (;;) {
            long c = 8 * i + 1;
            long end, m, j;
            double mw;

            if (c >= size)
                break;
            end = (c + 8 < size) ? c + 8 : size;
            m = c;
            mw = heap[c];
            for (j = c + 1; j < end; ++j) {
                if (heap[j] > mw) {
                    mw = heap[j];
                    m = j;
                }
            }
            if (mw <= big)
                break;
            heap[i] = mw;
            i = m;
        }
        heap[i] = big;
    }
    heap[n - 1] = cur;
}

void repro_hf_batch(const double *draws, long draws_stride,
                    const double *w0, double *out, long n_trials, long n)
{
    long i;
    for (i = 0; i < n_trials; ++i)
        hf_one(draws + i * draws_stride, out + i * n, w0[i], n);
}
