"""Samplers for the stochastic bisection model of Section 4.

The paper's average-case model: "the actual bisection parameter α̂ is drawn
uniformly at random from the interval [a, b], 0 < a ≤ b ≤ 1/2, and all
N-1 bisection steps are independent and identically distributed".

A sampler maps a ``numpy.random.Generator`` to a draw α̂ ∈ (0, 1/2]; it also
declares the *guaranteed* bisector parameter of the family it induces
(``alpha`` = the essential infimum of its support), which PHF and BA-HF
consume.  Samplers are immutable, hashable and cheaply vectorised
(``sample_many``) for the Monte-Carlo fast paths.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.core.problem import check_alpha

__all__ = [
    "AlphaSampler",
    "UniformAlpha",
    "FixedAlpha",
    "BetaAlpha",
    "DiscreteAlpha",
]


class AlphaSampler(ABC):
    """Distribution of the per-bisection lighter-child share α̂."""

    @property
    @abstractmethod
    def alpha(self) -> float:
        """Guaranteed lower bound of the support (the class's α)."""

    @property
    @abstractmethod
    def beta(self) -> float:
        """Upper bound of the support (≤ 1/2)."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """One draw α̂ ∈ [alpha, beta]."""

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """``size`` i.i.d. draws (subclasses override with vector code)."""
        return np.array([self.sample(rng) for _ in range(size)])

    def sample_block(
        self, rng: np.random.Generator, shape: Tuple[int, ...]
    ) -> np.ndarray:
        """Draws of arbitrary ``shape`` from a single stream (row-major).

        ``sample_block(rng, (t, k))[i, j]`` equals the ``(i*k + j)``-th
        sequential draw of ``rng`` -- i.e. a reshaped :meth:`sample_many`.
        Use when one stream feeds a whole batch; use
        :meth:`sample_trial_matrix` when each row must come from its own
        per-trial generator.
        """
        size = 1
        for dim in shape:
            if dim < 0:
                raise ValueError(f"shape must be non-negative, got {shape}")
            size *= dim
        return self.sample_many(rng, size).reshape(shape)

    def sample_trial_matrix(
        self, rngs: Sequence[np.random.Generator], n_draws: int
    ) -> np.ndarray:
        """The batched-kernel draw matrix: row ``t`` from ``rngs[t]``.

        Returns a ``(len(rngs), n_draws)`` array in which row ``t``
        contains the first ``n_draws`` values of ``rngs[t]``'s stream --
        exactly what the scalar trial for generator ``rngs[t]`` would
        consume -- so batched kernels reproduce per-trial results
        bit-for-bit no matter how trials are chunked across workers.
        """
        if not rngs:
            raise ValueError("need at least one generator")
        if n_draws < 0:
            raise ValueError(f"n_draws must be non-negative, got {n_draws}")
        out = np.empty((len(rngs), n_draws), dtype=np.float64)
        for t, rng in enumerate(rngs):
            out[t] = self.sample_many(rng, n_draws)
        return out

    def describe(self) -> str:
        """Short label used in tables ("U[0.10,0.50]", "δ(0.30)", ...)."""
        return repr(self)


@dataclass(frozen=True)
class UniformAlpha(AlphaSampler):
    """α̂ ~ U[low, high] -- the paper's model.  ``0 < low ≤ high ≤ 1/2``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        check_alpha(self.low)
        check_alpha(self.high)
        if self.low > self.high:
            raise ValueError(f"low must be <= high, got [{self.low}, {self.high}]")

    @property
    def alpha(self) -> float:
        return self.low

    @property
    def beta(self) -> float:
        return self.high

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=size)

    def describe(self) -> str:
        return f"U[{self.low:g},{self.high:g}]"


@dataclass(frozen=True)
class FixedAlpha(AlphaSampler):
    """Deterministic α̂ = value (the worst-case adversary for theorems)."""

    value: float

    def __post_init__(self) -> None:
        check_alpha(self.value)

    @property
    def alpha(self) -> float:
        return self.value

    @property
    def beta(self) -> float:
        return self.value

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return np.full(size, self.value)

    def describe(self) -> str:
        return f"δ({self.value:g})"


@dataclass(frozen=True)
class BetaAlpha(AlphaSampler):
    """α̂ = low + (high-low)·Beta(a, b): a skewable alternative to uniform.

    Used in robustness studies: the paper's findings should not hinge on the
    uniform shape, only on the support.
    """

    a: float
    b: float
    low: float = 0.01
    high: float = 0.5

    def __post_init__(self) -> None:
        check_alpha(self.low)
        check_alpha(self.high)
        if self.low > self.high:
            raise ValueError(f"low must be <= high, got [{self.low}, {self.high}]")
        if self.a <= 0 or self.b <= 0:
            raise ValueError(f"shape parameters must be positive, got {self.a}, {self.b}")

    @property
    def alpha(self) -> float:
        return self.low

    @property
    def beta(self) -> float:
        return self.high

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.low + (self.high - self.low) * rng.beta(self.a, self.b))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return self.low + (self.high - self.low) * rng.beta(self.a, self.b, size=size)

    def describe(self) -> str:
        return f"Beta({self.a:g},{self.b:g})->[{self.low:g},{self.high:g}]"


@dataclass(frozen=True)
class DiscreteAlpha(AlphaSampler):
    """α̂ drawn from a finite set with given probabilities."""

    values: Tuple[float, ...]
    probabilities: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("need at least one value")
        for v in self.values:
            check_alpha(v)
        probs = self.probabilities or tuple(1.0 / len(self.values) for _ in self.values)
        if len(probs) != len(self.values):
            raise ValueError("probabilities must match values in length")
        if abs(sum(probs) - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {sum(probs)}")
        if any(p < 0 for p in probs):
            raise ValueError("probabilities must be non-negative")
        object.__setattr__(self, "probabilities", probs)

    @property
    def alpha(self) -> float:
        return min(v for v, p in zip(self.values, self.probabilities) if p > 0)

    @property
    def beta(self) -> float:
        return max(v for v, p in zip(self.values, self.probabilities) if p > 0)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.choice(self.values, p=self.probabilities))

    def sample_many(self, rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(self.values, p=self.probabilities, size=size)

    def describe(self) -> str:
        vals = ",".join(f"{v:g}" for v in self.values)
        return f"D({vals})"
