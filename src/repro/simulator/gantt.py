"""ASCII Gantt rendering of recorded machine traces.

Run any simulated algorithm with ``MachineConfig(record_events=True)`` and
feed the machine's event list (surfaced as ``SimulationResult.events``) to
:func:`render_gantt` to *see* the execution: which processors bisect when,
where subproblems travel, and how much of the makespan the collective
rounds eat -- the intuition behind the paper's running-time theorems,
made visible.

Legend: ``B`` bisection, ``s`` sending, ``c`` control round-trip,
``a`` acquire, ``=`` collective (all processors), ``.`` idle.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.simulator.machine import MachineEvent

__all__ = ["render_gantt", "gantt_rows"]

_KIND_MARK = {
    "bisect": "B",
    "send": "s",
    "control": "c",
    "acquire": "a",
    "collective": "=",
}


def gantt_rows(
    events: Sequence[MachineEvent],
    n_processors: int,
    *,
    width: int = 80,
    until: Optional[float] = None,
) -> List[str]:
    """One character row per processor, time bucketed into ``width`` cells.

    Later events overwrite earlier ones within a bucket, and collectives
    (which occupy everyone) are painted on every row.
    """
    if n_processors < 1:
        raise ValueError(f"n_processors must be >= 1, got {n_processors}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    horizon = until if until is not None else max((e.end for e in events), default=0.0)
    if horizon <= 0:
        return ["." * width for _ in range(n_processors)]
    scale = width / horizon

    rows = [["."] * width for _ in range(n_processors)]

    def paint(row: List[str], start: float, end: float, mark: str) -> None:
        lo = int(start * scale)
        hi = max(lo + 1, int(end * scale))
        for x in range(lo, min(hi, width)):
            row[x] = mark

    for event in events:
        mark = _KIND_MARK.get(event.kind, "?")
        if event.kind == "collective":
            for row in rows:
                paint(row, event.start, event.end, mark)
        else:
            if 1 <= event.proc <= n_processors:
                paint(rows[event.proc - 1], event.start, event.end, mark)
    return ["".join(row) for row in rows]


def render_gantt(
    events: Sequence[MachineEvent],
    n_processors: int,
    *,
    width: int = 80,
    max_rows: int = 32,
    title: str = "",
) -> str:
    """Full chart with axis and legend; at most ``max_rows`` processors."""
    shown = min(n_processors, max_rows)
    rows = gantt_rows(events, n_processors, width=width)[:shown]
    horizon = max((e.end for e in events), default=0.0)
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(rows, start=1):
        lines.append(f"P{idx:<4}|{row}|")
    if n_processors > shown:
        lines.append(f"      ... {n_processors - shown} more processors ...")
    lines.append(f"      0{' ' * (width - len(f'{horizon:.0f}') - 1)}{horizon:.0f}")
    lines.append(
        "      B=bisect s=send c=control a=acquire ==collective .=idle"
    )
    return "\n".join(lines)
