"""Program-execution DAGs as bisectable problems.

The paper's Definition-1 discussion notes that abstract problems "might
correspond to ... program execution dags".  We model the well-behaved
class of **series-parallel** task graphs: a node is either an atomic task
with a cost, a *series* composition (children run one after another) or a
*parallel* composition (children are independent).  The weight of a graph
is its total work.

Bisection splits the composition's children into two contiguous-in-series
or balanced-in-parallel groups (weight conservation is exact because work
is additive); an atomic task is indivisible.  Since series children must
stay contiguous (they are a pipeline), the achievable balance is governed
by the lumpiness of the child weights -- another concrete instance of an
α-bisector class whose α must be probed, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.problem import BisectableProblem
from repro.utils.rng import child_seed

__all__ = ["Task", "Series", "Parallel", "TaskDagProblem", "random_task_dag"]


@dataclass(frozen=True)
class Task:
    """An atomic unit of work."""

    cost: float

    def __post_init__(self) -> None:
        if self.cost <= 0:
            raise ValueError(f"task cost must be positive, got {self.cost}")

    @property
    def work(self) -> float:
        return self.cost

    def count_tasks(self) -> int:
        return 1


@dataclass(frozen=True)
class Series:
    """Children executed sequentially (a pipeline segment)."""

    children: Tuple["DagNode", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("Series needs at least two children")

    @property
    def work(self) -> float:
        return sum(c.work for c in self.children)

    def count_tasks(self) -> int:
        return sum(c.count_tasks() for c in self.children)


@dataclass(frozen=True)
class Parallel:
    """Independent children (a fork-join block)."""

    children: Tuple["DagNode", ...]

    def __post_init__(self) -> None:
        if len(self.children) < 2:
            raise ValueError("Parallel needs at least two children")

    @property
    def work(self) -> float:
        return sum(c.work for c in self.children)

    def count_tasks(self) -> int:
        return sum(c.count_tasks() for c in self.children)


DagNode = Union[Task, Series, Parallel]


class TaskDagProblem(BisectableProblem):
    """A series-parallel task graph to be mapped onto a processor group."""

    def __init__(self, root: DagNode) -> None:
        super().__init__()
        self._root = root
        self._weight = float(root.work)

    @property
    def weight(self) -> float:
        return self._weight

    @property
    def root(self) -> DagNode:
        return self._root

    @property
    def n_tasks(self) -> int:
        return self._root.count_tasks()

    @property
    def can_bisect(self) -> bool:
        return not isinstance(self._root, Task)

    # ------------------------------------------------------------------

    def _bisect_once(self) -> Tuple["TaskDagProblem", "TaskDagProblem"]:
        if isinstance(self._root, Task):
            raise ValueError(
                "cannot bisect an atomic task: ask for at most as many "
                "pieces as there are tasks"
            )
        children = self._root.children
        if isinstance(self._root, Series):
            groups = _best_contiguous_split(children)
        else:
            groups = _balanced_subset_split(children)
        return (
            TaskDagProblem(_wrap(type(self._root), groups[0])),
            TaskDagProblem(_wrap(type(self._root), groups[1])),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TaskDagProblem(tasks={self.n_tasks}, w={self._weight:.6g})"


def _wrap(kind, children: Sequence[DagNode]) -> DagNode:
    """Re-wrap a child group; single children collapse to the child."""
    if len(children) == 1:
        return children[0]
    return kind(tuple(children))


def _best_contiguous_split(
    children: Sequence[DagNode],
) -> Tuple[Tuple[DagNode, ...], Tuple[DagNode, ...]]:
    """Series split: the cut position closest to half the work."""
    works = [c.work for c in children]
    total = sum(works)
    best_k, best_err = 1, float("inf")
    acc = 0.0
    for k in range(1, len(children)):
        acc += works[k - 1]
        err = abs(acc - total / 2.0)
        if err < best_err - 1e-15:
            best_k, best_err = k, err
    return tuple(children[:best_k]), tuple(children[best_k:])


def _balanced_subset_split(
    children: Sequence[DagNode],
) -> Tuple[Tuple[DagNode, ...], Tuple[DagNode, ...]]:
    """Parallel split: greedy LPT over the children (order-independent)."""
    order = sorted(range(len(children)), key=lambda i: (-children[i].work, i))
    left: List[int] = []
    right: List[int] = []
    w_left = w_right = 0.0
    for i in order:
        if w_left <= w_right:
            left.append(i)
            w_left += children[i].work
        else:
            right.append(i)
            w_right += children[i].work
    left.sort()
    right.sort()
    return (
        tuple(children[i] for i in left),
        tuple(children[i] for i in right),
    )


def random_task_dag(
    n_tasks: int,
    *,
    seed: int = 0,
    parallel_bias: float = 0.6,
    fanout: int = 4,
    cost_spread: float = 5.0,
) -> TaskDagProblem:
    """Generate a random series-parallel program with ``n_tasks`` tasks.

    ``parallel_bias`` is the probability an internal composition is
    Parallel rather than Series; ``fanout`` bounds the children per
    composition; task costs are log-uniform in ``[1, cost_spread]``.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    if not (0.0 <= parallel_bias <= 1.0):
        raise ValueError(f"parallel_bias must be in [0,1], got {parallel_bias}")
    if fanout < 2:
        raise ValueError(f"fanout must be >= 2, got {fanout}")
    if cost_spread < 1.0:
        raise ValueError(f"cost_spread must be >= 1, got {cost_spread}")
    rng = np.random.default_rng(seed)

    def build(budget: int) -> DagNode:
        if budget == 1:
            return Task(float(np.exp(rng.uniform(0.0, np.log(cost_spread)))))
        k = int(min(budget, rng.integers(2, fanout + 1)))
        # split the task budget over k children, each at least 1
        cuts = np.sort(rng.choice(np.arange(1, budget), size=k - 1, replace=False))
        sizes = np.diff(np.concatenate([[0], cuts, [budget]])).astype(int)
        children = tuple(build(int(s)) for s in sizes)
        kind = Parallel if rng.random() < parallel_bias else Series
        return kind(children)

    return TaskDagProblem(build(n_tasks))
