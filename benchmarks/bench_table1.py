"""Bench T1 -- regenerate the paper's Table 1.

Worst-case upper bounds and observed min/avg/max ratios for
α̂ ~ U[0.01, 0.5], λ = 1.0, algorithms BA / BA-HF / HF over N = 2^k.

Paper's reported shape (Section 4): every observed statistic sits far
below the worst-case bound; HF has the best (smallest) and BA the worst
(largest) average ratio; BA-HF sits in between; the three averages stay
within a factor ≈ 3 of each other for fixed N.
"""

import pytest

from repro.experiments.table1 import render_table1, run_table1

from _common import grid, run_once, write_artifact


@pytest.fixture(scope="module")
def scale():
    return grid()


def test_table1_reproduction(benchmark, scale):
    n_values, n_trials = scale
    result = run_once(
        benchmark, lambda: run_table1(n_trials=n_trials, n_values=n_values)
    )
    rendered = render_table1(result)
    write_artifact("table1", rendered)

    threshold = 1 / 0.01 + 1  # BA-HF == HF below this N
    for n in n_values:
        hf = result.get("hf", n).sample
        bahf = result.get("bahf", n).sample
        ba = result.get("ba", n).sample

        # observed far below worst case (the paper's central message)
        assert hf.maximum <= result.get("hf", n).upper_bound + 1e-9
        assert ba.maximum <= result.get("ba", n).upper_bound + 1e-9
        assert bahf.maximum <= result.get("bahf", n).upper_bound + 1e-9
        if n >= 128:
            assert hf.maximum < 0.5 * result.get("hf", n).upper_bound

        # ordering: HF best, BA worst (BA-HF degenerates to HF below the
        # switch-over threshold, so compare only where it differs)
        assert hf.mean <= ba.mean
        if n > threshold:
            assert hf.mean <= bahf.mean <= ba.mean

        # "usually ... no more than a factor of 3" -- strict on the
        # default grid; BA's mean creeps up with log N, so allow slack on
        # the paper-scale tail
        assert ba.mean / hf.mean < (3.0 if n <= 2**12 else 4.0)

    benchmark.extra_info["cells"] = len(result.records)
    benchmark.extra_info["n_trials"] = n_trials
    benchmark.extra_info["hf_avg_at_max_n"] = result.get(
        "hf", max(n_values)
    ).sample.mean
