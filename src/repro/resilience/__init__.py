"""Fault injection and recovery for the simulated machine.

The paper's algorithms assume a reliable machine; this package asks what
happens when processors fail.  It provides:

* deterministic fault schedules (:class:`FaultConfig`,
  :class:`FaultPlan`, :func:`fault_plan_for`) -- processor crashes
  (fail-stop), stragglers, message loss and delay, all derived
  bit-reproducibly from ``(seed, trial)``;
* recovery protocols (:class:`RecoveryPolicy`,
  :class:`RecoveryTracker`) -- ack timeouts, exponential backoff,
  re-targeting via the surviving-processor pool, adoption when retries
  are exhausted;
* fault-aware executions (:func:`simulate_with_faults`) of HF, PHF, BA
  and BA-HF that produce degraded-mode metrics in
  ``SimulationResult.fault_summary``.

With an empty plan every run is bit-identical to the fault-free
simulators -- the layer is inert unless faults are injected.
"""

from repro.resilience.faults import FaultConfig, FaultPlan, fault_plan_for
from repro.resilience.recovery import RecoveryPolicy, RecoveryTracker
from repro.resilience.sim import simulate_with_faults

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "fault_plan_for",
    "RecoveryPolicy",
    "RecoveryTracker",
    "simulate_with_faults",
]
