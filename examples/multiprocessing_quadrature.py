#!/usr/bin/env python
"""End-to-end: partition with BA, then *actually* compute in parallel.

Everything else in this repo measures balance abstractly; this example
closes the loop.  A 2-D integral with a sharp peak is split into per-CPU
boxes by Algorithm BA (work-estimate-driven), each worker process then
integrates its boxes on a fine grid, and we compare the measured
wall-clock times against a naive equal-area split of the same domain.

Run:  python examples/multiprocessing_quadrature.py [N_WORKERS]
"""

import sys
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import run_ba
from repro.problems import QuadratureProblem

SHARPNESS = 60.0
CENTER = (0.23, 0.71)


def integrand(x: np.ndarray) -> np.ndarray:
    """Gaussian peak (module-level so worker processes can unpickle it)."""
    c = np.asarray(CENTER)
    d2 = ((x - c) ** 2).sum(axis=-1)
    return np.exp(-SHARPNESS * d2)


def integrate_box(args) -> tuple:
    """Worker: integrate one box; resolution adapts to estimated work."""
    lower, upper, weight = args
    t0 = time.perf_counter()
    # grid resolution proportional to the work estimate -- mimicking an
    # adaptive code that spends effort where the integrand is hard
    # (capped so a single box never needs more than ~tens of MB)
    points = int(np.clip(1200 * np.sqrt(weight / 0.002), 64, 1600))
    xs = np.linspace(lower[0], upper[0], points)
    ys = np.linspace(lower[1], upper[1], points)
    grid = np.stack(np.meshgrid(xs, ys, indexing="ij"), axis=-1)
    vals = integrand(grid)
    area = (upper[0] - lower[0]) * (upper[1] - lower[1])
    result = float(vals.mean() * area)
    return result, time.perf_counter() - t0


def equal_area_boxes(n: int):
    """Naive baseline: n equal-width strips."""
    edges = np.linspace(0.0, 1.0, n + 1)
    box = QuadratureProblem([0, 0], [1, 1], integrand, samples_per_axis=9)
    out = []
    for k in range(n):
        sub = QuadratureProblem(
            [edges[k], 0.0], [edges[k + 1], 1.0], integrand, samples_per_axis=9
        )
        # rescale the work estimates to the same total as `box`
        out.append(((edges[k], 0.0), (edges[k + 1], 1.0), sub.weight))
    total = sum(w for _, _, w in out)
    return [(lo, hi, w * box.weight / total) for lo, hi, w in out]


def run_pool(boxes, n_workers):
    t0 = time.perf_counter()
    with ProcessPoolExecutor(max_workers=n_workers) as pool:
        results = list(pool.map(integrate_box, boxes))
    wall = time.perf_counter() - t0
    total = sum(r for r, _ in results)
    times = [t for _, t in results]
    return total, wall, times


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 4

    problem = QuadratureProblem(
        [0.0, 0.0], [1.0, 1.0], integrand, samples_per_axis=9, min_alpha=0.02
    )
    partition = run_ba(problem, n)
    ba_boxes = [
        (tuple(p.lower), tuple(p.upper), p.weight) for p in partition.pieces
    ]
    naive_boxes = equal_area_boxes(n)

    print(f"integrating a sharp 2-D peak on {n} worker processes\n")
    for name, boxes in [("BA work-balanced", ba_boxes), ("equal-area naive", naive_boxes)]:
        total, wall, times = run_pool(boxes, n)
        imbalance = max(times) / (sum(times) / len(times))
        print(
            f"{name:<18} integral={total:.6f}  wall={wall:5.2f}s  "
            f"worker-time imbalance={imbalance:.2f}x"
        )
        bars = "  ".join(f"{t:4.2f}s" for t in times)
        print(f"{'':<18} per-worker compute: {bars}\n")

    print(
        "The BA partition's estimated-work balance translates into "
        "balanced measured compute times; the equal-area split leaves the "
        "peak's worker as the straggler."
    )


if __name__ == "__main__":
    main()
