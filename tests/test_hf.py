"""Unit tests for Algorithm HF (Figure 1, Theorem 2)."""

import numpy as np
import pytest

from repro.core import hf_bound, hf_final_weights, hf_trace, run_hf
from repro.problems import FixedAlpha, SyntheticProblem, UniformAlpha

from conftest import assert_valid_partition


class TestRunHF:
    def test_single_processor_no_bisection(self, synthetic_problem):
        part = run_hf(synthetic_problem, 1)
        assert len(part.pieces) == 1
        assert part.num_bisections == 0
        assert part.pieces[0] is synthetic_problem
        assert part.ratio == pytest.approx(1.0)

    def test_uses_exactly_n_minus_one_bisections(self, synthetic_problem):
        # Theorem 2: HF uses N-1 bisections
        for n in (2, 5, 17, 64):
            part = run_hf(SyntheticProblem(1.0, UniformAlpha(0.1, 0.5), seed=n), n)
            assert part.num_bisections == n - 1
            assert len(part.pieces) == n

    def test_exact_weights_fixed_alpha(self):
        # alpha-hat = 0.3 fixed, N = 3: pieces {0.7*0.3, 0.7*0.7, 0.3}
        p = SyntheticProblem(1.0, FixedAlpha(0.3), seed=0)
        part = run_hf(p, 3)
        assert sorted(part.weights) == pytest.approx([0.21, 0.3, 0.49])

    def test_exact_weights_fixed_alpha_n4(self):
        # continue: heaviest 0.49 -> 0.343, 0.147
        p = SyntheticProblem(1.0, FixedAlpha(0.3), seed=0)
        part = run_hf(p, 4)
        assert sorted(part.weights) == pytest.approx([0.147, 0.21, 0.3, 0.343])

    def test_perfect_balance_with_half_splits(self):
        p = SyntheticProblem(1.0, FixedAlpha(0.5), seed=0)
        part = run_hf(p, 64)
        assert part.ratio == pytest.approx(1.0)
        assert np.allclose(part.weights, 1 / 64)

    def test_ratio_within_theorem2_bound(self, wide_sampler):
        for seed in range(5):
            p = SyntheticProblem(1.0, wide_sampler, seed=seed)
            part = run_hf(p, 128)
            assert part.ratio <= hf_bound(wide_sampler.alpha, 128) + 1e-9

    def test_bisected_weights_non_increasing(self, synthetic_problem):
        # HF always bisects the current heaviest, so the sequence of
        # bisected weights is non-increasing.
        trace = hf_trace(synthetic_problem, 64)
        assert all(a >= b - 1e-12 for a, b in zip(trace, trace[1:]))
        assert len(trace) == 63

    def test_tree_recording(self, synthetic_problem):
        part = run_hf(synthetic_problem, 32, record_tree=True)
        part.validate()
        assert part.tree.num_leaves == 32
        assert sorted(part.tree.leaf_weights()) == pytest.approx(
            sorted(part.weights)
        )

    def test_no_tree_by_default(self, synthetic_problem):
        assert run_hf(synthetic_problem, 8).tree is None

    def test_deterministic_across_runs(self, uniform_sampler):
        p1 = SyntheticProblem(1.0, uniform_sampler, seed=7)
        p2 = SyntheticProblem(1.0, uniform_sampler, seed=7)
        w1 = run_hf(p1, 40).weights
        w2 = run_hf(p2, 40).weights
        assert w1 == pytest.approx(w2)

    def test_partition_is_valid(self, synthetic_problem):
        assert_valid_partition(run_hf(synthetic_problem, 20), 20, total=1.0)

    def test_rejects_zero_processors(self, synthetic_problem):
        with pytest.raises(ValueError):
            run_hf(synthetic_problem, 0)


class TestHFFinalWeights:
    def test_matches_object_api_for_fixed_alpha(self):
        n = 37
        p = SyntheticProblem(1.0, FixedAlpha(0.3), seed=0)
        obj = sorted(run_hf(p, n).weights)
        fast = sorted(hf_final_weights(1.0, n, np.full(n - 1, 0.3)))
        assert fast == pytest.approx(obj)

    def test_weights_sum_to_initial(self):
        rng = np.random.default_rng(0)
        draws = rng.uniform(0.05, 0.5, size=99)
        w = hf_final_weights(2.5, 100, draws)
        assert w.sum() == pytest.approx(2.5)
        assert len(w) == 100
        assert (w > 0).all()

    def test_single_processor(self):
        w = hf_final_weights(3.0, 1, [])
        assert list(w) == [3.0]

    def test_insufficient_draws_rejected(self):
        with pytest.raises(ValueError, match="alpha draws"):
            hf_final_weights(1.0, 10, np.full(5, 0.3))

    def test_extra_draws_ignored(self):
        a = hf_final_weights(1.0, 4, np.full(3, 0.3))
        b = hf_final_weights(1.0, 4, np.full(100, 0.3))
        assert sorted(a) == pytest.approx(sorted(b))

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            hf_final_weights(0.0, 2, [0.3])

    def test_rejects_zero_processors(self):
        with pytest.raises(ValueError):
            hf_final_weights(1.0, 0, [])


class TestHFOnOtherProblems:
    def test_list_problem(self, list_problem):
        part = run_hf(list_problem, 16)
        assert_valid_partition(part, 16, total=list_problem.weight)
        # element counts partition the original list
        assert sum(p.n_elements for p in part.pieces) == list_problem.n_elements

    def test_fe_tree_problem(self, fe_problem):
        part = run_hf(fe_problem, 8)
        assert_valid_partition(part, 8, total=fe_problem.weight)
        assert sum(p.n_nodes for p in part.pieces) == fe_problem.n_nodes

    def test_quadrature_problem(self, quadrature_problem):
        part = run_hf(quadrature_problem, 10)
        assert_valid_partition(part, 10, total=quadrature_problem.weight)
        # volumes partition the unit square
        assert sum(p.volume for p in part.pieces) == pytest.approx(1.0)

    def test_domain_problem(self, domain_problem):
        part = run_hf(domain_problem, 12)
        assert_valid_partition(part, 12, total=domain_problem.weight)
        assert sum(p.n_cells for p in part.pieces) == domain_problem.n_cells
