"""Tests for the extension studies: topology (E7), worst-case (E8),
distribution shapes (E9), and the 'steal' PHF phase-1 mode."""

import pytest

from repro.core import run_hf
from repro.experiments.distribution_study import (
    default_shapes,
    render_distribution_study,
    run_distribution_study,
)
from repro.experiments.topology_study import (
    render_topology_study,
    run_topology_study,
)
from repro.experiments.worstcase_study import (
    render_worstcase_study,
    run_worstcase_study,
)
from repro.problems import SyntheticProblem, UniformAlpha
from repro.simulator import simulate_phf


class TestTopologyStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_topology_study(n_values=(16, 64), n_repeats=2, seed=41)

    def test_complete_is_fastest(self, result):
        for algo in ("ba", "phf"):
            for n in (16, 64):
                for topo in ("hypercube", "mesh2d", "ring"):
                    assert result.slowdown(topo, algo, n) >= 1.0 - 1e-9

    def test_ring_worst_for_collective_algorithms(self, result):
        # ring diameter N/2 inflates PHF's collectives hardest
        assert result.slowdown("ring", "phf", 64) > result.slowdown(
            "hypercube", "phf", 64
        )

    def test_ba_degrades_most_gracefully_on_ring(self, result):
        # the paper's conclusion: architecture decides; BA's locality wins
        # on sparse networks
        assert result.slowdown("ring", "ba", 64) <= result.slowdown(
            "ring", "hf", 64
        ) * 1.5

    def test_hops_grow_on_sparse_topologies(self, result):
        complete = result.get("complete", "ba", 64).total_hops
        ring = result.get("ring", "ba", 64).total_hops
        assert ring > complete

    def test_get_unknown_raises(self, result):
        with pytest.raises(KeyError):
            result.get("torus", "ba", 16)

    def test_render(self, result):
        out = render_topology_study(result)
        assert "ring" in out and "hypercube" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            run_topology_study(topologies=("torus",), n_values=(16,))
        with pytest.raises(ValueError):
            run_topology_study(n_repeats=0)


class TestWorstCaseStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_worstcase_study(
            alphas=(0.1, 1 / 3),
            algorithms=("hf", "ba"),
            n_values=(7, 16, 63, 127),
            repeats=2,
            seed=42,
        )

    def test_all_within_bounds(self, result):
        for rep in result.reports.values():
            assert rep.tightness <= 1.0 + 1e-9

    def test_hf_tighter_than_ba(self, result):
        # HF's bound is nearly achieved; BA's carries the loose e-factor
        assert result.max_tightness("hf") > result.max_tightness("ba")

    def test_render(self, result):
        out = render_worstcase_study(result)
        assert "tightness" in out and "witness" in out


class TestDistributionStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_distribution_study(
            n_trials=100, n_values=(32, 128), seed=43
        )

    def test_ordering_survives_every_shape(self, result):
        for shape in result.shapes:
            assert result.ordering_holds(shape)

    def test_hf_flat_for_every_shape(self, result):
        for shape in result.shapes:
            assert result.hf_flatness(shape) < 0.15

    def test_left_skew_worse_than_right_skew(self, result):
        # more mass near the bad (small-alpha) end -> worse balance
        assert result.mean("beta_left", "hf", 128) > result.mean(
            "beta_right", "hf", 128
        )

    def test_default_shapes_share_support(self):
        shapes = default_shapes(0.1, 0.5)
        assert {s.alpha for s in shapes.values()} == {0.1}
        assert {s.beta for s in shapes.values()} == {0.5}

    def test_render(self, result):
        out = render_distribution_study(result)
        assert "uniform" in out and "two_point" in out


class TestStealPhase1:
    def test_partition_still_equals_hf(self):
        p1 = SyntheticProblem(1.0, UniformAlpha(0.1, 0.5), seed=44)
        p2 = SyntheticProblem(1.0, UniformAlpha(0.1, 0.5), seed=44)
        res = simulate_phf(p1, 64, phase1="steal")
        assert res.partition.same_pieces_as(run_hf(p2, 64))

    def test_probe_cost_charged(self):
        p = SyntheticProblem(1.0, UniformAlpha(0.1, 0.5), seed=45)
        central = simulate_phf(
            SyntheticProblem(1.0, UniformAlpha(0.1, 0.5), seed=45), 64
        )
        steal = simulate_phf(p, 64, phase1="steal")
        # probing needs at least one control message per phase-1 bisection,
        # strictly more than the central manager's zero
        assert steal.n_control_messages > central.n_control_messages

    def test_seeded_reproducibility(self):
        mk = lambda: SyntheticProblem(1.0, UniformAlpha(0.1, 0.5), seed=46)
        a = simulate_phf(mk(), 32, phase1="steal", steal_seed=5)
        b = simulate_phf(mk(), 32, phase1="steal", steal_seed=5)
        assert a.n_control_messages == b.n_control_messages
        assert a.parallel_time == pytest.approx(b.parallel_time)

    def test_meta_records_mode(self):
        p = SyntheticProblem(1.0, UniformAlpha(0.1, 0.5), seed=47)
        res = simulate_phf(p, 16, phase1="steal")
        assert res.partition.meta["phase1_mode"] == "steal"
