"""Tests for the crash-safe chunk journal and resumable execution."""

import json

import pytest

from repro.experiments.checkpoint import (
    ChunkJournal,
    JournalError,
    JournalMismatchError,
    execute_chunks,
    fingerprint_digest,
)
from repro.experiments.config import StochasticConfig
from repro.experiments.runner import run_sweep, sweep_fingerprint

FP = {"kind": "test", "seed": 7}


def _double(task):
    return task * 2


class _Flaky:
    """Fails the first ``n_failures`` calls, then succeeds."""

    def __init__(self, n_failures):
        self.remaining = n_failures

    def __call__(self, task):
        if self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("transient")
        return task * 2


class TestChunkJournal:
    def test_fresh_journal_writes_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", {"x": 1})
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["sha256"] == fingerprint_digest(FP)
        assert json.loads(lines[1]) == {
            "kind": "chunk",
            "key": "a:0",
            "payload": {"x": 1},
        }

    def test_resume_loads_completed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 1.5, "a:8": 2.5}

    def test_resume_missing_file_starts_fresh(self, tmp_path):
        path = tmp_path / "does-not-exist.jsonl"
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {}
        assert path.exists()

    def test_resume_tolerates_truncated_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        with path.open("a") as fh:
            fh.write('{"kind": "chunk", "key": "a:8", "pay')
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"a:0": 1.5}

    def test_mid_file_corruption_is_an_error(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
            journal.record("a:8", 2.5)
        # corrupting a NON-trailing line is real damage, not a torn tail
        text = path.read_text()
        assert '"key":"a:0"' in text
        path.write_text(text.replace('"key":"a:0"', '"key":"a:0'))
        with pytest.raises(JournalError, match="corrupt"):
            ChunkJournal.open(path, fingerprint=FP, resume=True)

    def test_fingerprint_mismatch_refuses_resume(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ChunkJournal.open(path, fingerprint=FP).close()
        with pytest.raises(JournalMismatchError, match="different run"):
            ChunkJournal.open(
                path, fingerprint={"kind": "test", "seed": 8}, resume=True
            )

    def test_no_resume_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("a:0", 1.5)
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            assert journal.completed == {}
        assert len(path.read_text().splitlines()) == 1


class TestExecuteChunks:
    def test_results_in_task_order(self):
        out = execute_chunks(
            [3, 1, 2], _double, keys=["k3", "k1", "k2"], n_jobs=1
        )
        assert out == [6, 2, 4]

    def test_journal_replay_skips_completed(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            journal.record("k1", 1111)

            def boom(task):
                raise AssertionError("completed chunk must not re-run")

            out = execute_chunks(
                [1], boom, keys=["k1"], n_jobs=1, journal=journal
            )
        assert out == [1111]

    def test_fresh_chunks_are_journaled(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            execute_chunks(
                [1, 2], _double, keys=["k1", "k2"], n_jobs=1, journal=journal
            )
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            assert journal.completed == {"k1": 2, "k2": 4}

    def test_encode_decode_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with ChunkJournal.open(path, fingerprint=FP) as journal:
            execute_chunks(
                [1],
                _double,
                keys=["k1"],
                n_jobs=1,
                journal=journal,
                encode=lambda r: {"value": r},
            )
        with ChunkJournal.open(path, fingerprint=FP, resume=True) as journal:
            out = execute_chunks(
                [1],
                _double,
                keys=["k1"],
                n_jobs=1,
                journal=journal,
                decode=lambda p: p["value"],
            )
        assert out == [2]

    def test_retries_transient_failures(self):
        out = execute_chunks(
            [5], _Flaky(2), keys=["k"], n_jobs=1, retries=2
        )
        assert out == [10]

    def test_retries_exhausted_raises(self):
        with pytest.raises(RuntimeError, match="transient"):
            execute_chunks([5], _Flaky(3), keys=["k"], n_jobs=1, retries=2)

    def test_key_count_must_match(self):
        with pytest.raises(ValueError, match="keys"):
            execute_chunks([1, 2], _double, keys=["k1"], n_jobs=1)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            execute_chunks([1], _double, keys=["k1"], n_jobs=1, retries=-1)


class TestSweepResume:
    def config(self, **overrides):
        kw = dict(n_trials=12, n_values=(4, 8), seed=11, chunk_size=4)
        kw.update(overrides)
        return StochasticConfig.paper_table1(**kw)

    def test_journaled_run_matches_plain(self, tmp_path):
        config = self.config()
        plain = run_sweep(config)
        journaled = run_sweep(config, journal_path=tmp_path / "s.jsonl")
        assert journaled.records == plain.records

    def test_truncated_resume_is_bit_identical(self, tmp_path):
        config = self.config()
        plain = run_sweep(config)
        journal = tmp_path / "s.jsonl"
        run_sweep(config, journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        keep = 1 + (len(lines) - 1) // 2
        journal.write_text("".join(lines[:keep]) + '{"kind": "chu')
        resumed = run_sweep(config, journal_path=journal, resume=True)
        assert resumed.records == plain.records

    def test_resume_with_different_n_jobs_is_exact(self, tmp_path):
        plain = run_sweep(self.config())
        journal = tmp_path / "s.jsonl"
        run_sweep(self.config(), journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: len(lines) // 2]))
        resumed = run_sweep(
            self.config(n_jobs=4), journal_path=journal, resume=True
        )
        assert resumed.records == plain.records

    def test_fingerprint_excludes_n_jobs(self):
        assert sweep_fingerprint(self.config()) == sweep_fingerprint(
            self.config(n_jobs=4)
        )

    def test_fingerprint_tracks_config(self):
        assert sweep_fingerprint(self.config()) != sweep_fingerprint(
            self.config(seed=12)
        )

    def test_mismatched_config_refuses_resume(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        run_sweep(self.config(), journal_path=journal)
        with pytest.raises(JournalMismatchError):
            run_sweep(
                self.config(seed=12), journal_path=journal, resume=True
            )


class TestStudyResume:
    def test_truncated_resume_is_bit_identical(self, tmp_path):
        import numpy as np

        from repro.experiments.runtime_study import run_study_cells
        from repro.problems.samplers import UniformAlpha

        cells = [("ba-4", "ba", 4, None), ("hf-8", "hf", 8, None)]
        kw = dict(
            cells=cells,
            sampler=UniformAlpha(0.1, 0.5),
            n_trials=6,
            seed=3,
            chunk_size=2,
        )
        plain = run_study_cells(**kw)
        journal = tmp_path / "study.jsonl"
        run_study_cells(**kw, journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: 1 + (len(lines) - 1) // 2]))
        resumed = run_study_cells(**kw, journal_path=journal, resume=True)
        assert sorted(plain) == sorted(resumed)
        for key in plain:
            assert np.array_equal(plain[key], resumed[key])


class TestFaultStudyResume:
    def test_truncated_resume_is_bit_identical(self, tmp_path):
        from repro.experiments.fault_study import run_fault_study

        kw = dict(
            algorithms=("ba",),
            n_values=(8,),
            fault_rates=(0.0, 0.2),
            n_trials=6,
            seed=13,
            chunk_size=2,
        )
        plain = run_fault_study(**kw)
        journal = tmp_path / "fault.jsonl"
        run_fault_study(**kw, journal_path=journal)
        lines = journal.read_text().splitlines(keepends=True)
        journal.write_text("".join(lines[: 1 + (len(lines) - 1) // 2]))
        resumed = run_fault_study(**kw, journal_path=journal, resume=True)
        assert [r.as_dict() for r in resumed.records] == [
            r.as_dict() for r in plain.records
        ]
