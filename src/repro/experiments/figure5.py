"""Experiment F5 -- the paper's Figure 5.

"Comparison of the average ratio for α̂ ~ U[0.1, 0.5], λ = 1.0": the mean
achieved ratio of BA, BA-HF and HF as a function of log2 N, N = 2^5..2^20.

Expected shape (paper, Section 4): three roughly flat curves ordered
BA > BA-HF > HF; "the average ratio obtained from Algorithm HF was
observed to be almost constant for the whole range of N = 32 to
N = 2^20"; the curves stay within a factor ≈ 3 of each other.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import PAPER_N_VALUES, StochasticConfig
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.tables import ascii_chart, format_series

__all__ = ["run_figure5", "render_figure5", "figure5_series"]


def run_figure5(
    *,
    n_trials: int = 1000,
    n_values: Optional[Sequence[int]] = None,
    seed: int = 20260706,
    n_jobs: int = 1,
    **sweep_kwargs,
) -> SweepResult:
    """Run the Figure 5 sweep (α̂ ~ U[0.1, 0.5], λ = 1.0).

    ``sweep_kwargs`` pass through to :func:`run_sweep`
    (``journal_path``/``resume``/``chunk_timeout``/``chunk_retries``).
    """
    config = StochasticConfig.paper_figure5(
        n_trials=n_trials,
        n_values=tuple(n_values) if n_values is not None else PAPER_N_VALUES,
        seed=seed,
        n_jobs=n_jobs,
    )
    return run_sweep(config, **sweep_kwargs)


def figure5_series(result: SweepResult) -> Dict[str, List[float]]:
    """Mean-ratio series per algorithm, ascending N (the plotted lines)."""
    return {
        algo: [v for _, v in result.series(algo, "mean")]
        for algo in result.algorithms()
    }


def render_figure5(result: SweepResult) -> str:
    """Numeric series plus an ASCII rendition of the figure."""
    ns = sorted({rec.n_processors for rec in result.records})
    x_labels = [str(int(math.log2(n))) if _pow2(n) else str(n) for n in ns]
    chart = ascii_chart(
        figure5_series(result),
        x_labels,
        title=(
            "Figure 5 -- average ratio vs log2 N "
            f"({result.config.sampler.describe()}, "
            f"lambda={result.config.lam:g})"
        ),
    )
    return format_series(result, "mean") + "\n\n" + chart


def _pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0
