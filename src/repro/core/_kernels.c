/* Native batch kernels for the stochastic bisection model.
 *
 * One call advances a whole batch: trial i reads its alpha-hat draws from
 * row i of `draws` and writes its outputs into row i of `out` (or the
 * i-th slot of the per-trial metric arrays).  Four kernels live here:
 *
 *   repro_hf_batch    -- HF final weights (hold-back 8-ary max-heap)
 *   repro_ba_batch    -- BA final weights (explicit DFS stack)
 *   repro_bahf_batch  -- BA-HF final weights (BA above the threshold,
 *                        the HF heap below it)
 *   repro_phf_metrics -- PHF machine metrics (central phase 1, complete
 *                        network): makespan, collective time/count,
 *                        control messages and max final weight per trial
 *
 * Exactness contract: children are computed as a*w and (1.0-a)*w -- the
 * same IEEE-754 operations, in the same order, as the scalar Python fast
 * paths -- and heap ordering only permutes equal-weight pops, which
 * leaves the final weight multiset unchanged.  The PHF kernel reproduces
 * the generation-lockstep chronology of repro.simulator.fastpath (itself
 * bit-identical to the DES oracle): every float chain is evaluated with
 * the same association.  Must NOT be compiled with -ffast-math or the
 * products may be contracted/reassociated.
 *
 * Trial-block threading: every kernel takes a trailing `n_threads` and
 * shards its trial range into at most that many *contiguous* blocks,
 * one worker per block.  Trials are mutually independent and each trial
 * writes only its own output row / metric slots, so any thread count
 * computes bit-identical results by construction -- threading never
 * changes which float operations run for a trial, only which thread
 * runs them.  Two backends are selected at compile time by _native.py:
 *
 *   -DREPRO_THREADS_PTHREAD (-pthread)  -- spawn-and-join pthreads per
 *       call.  Deliberately NOT a persistent pool: the experiment
 *       runners fork worker processes (ProcessPoolExecutor), and a
 *       library-held thread pool does not survive fork() -- children
 *       would inherit locked mutexes and dead threads.  Per-call spawn
 *       keeps the library fork-safe and costs microseconds against
 *       kernel calls that run for milliseconds.
 *   -DREPRO_THREADS_OPENMP (-fopenmp)   -- optional OpenMP path (probed
 *       at build time); same contiguous block decomposition.
 *
 * With neither define the block runner degrades to one inline call
 * (serial), so the source always compiles with a bare C99 toolchain.
 */

#include <math.h>
#include <stdlib.h>

#if defined(REPRO_THREADS_PTHREAD)
#include <pthread.h>
#define REPRO_THREAD_BACKEND 1
#elif defined(REPRO_THREADS_OPENMP)
#include <omp.h>
#define REPRO_THREAD_BACKEND 2
#else
#define REPRO_THREAD_BACKEND 0
#endif

/* Upper bound on worker threads per call; keeps the per-call block
 * table on the stack.  Far above any sane core count. */
#define REPRO_MAX_THREADS 128

/* Which threading backend this library was compiled with: 0 = serial,
 * 1 = pthread, 2 = OpenMP.  The Python side reports this as the
 * threading mode and records it in benchmark artifacts. */
int repro_threading_backend(void)
{
    return REPRO_THREAD_BACKEND;
}

/* ------------------------------------------------------------------ */
/* Trial-block runner                                                  */
/* ------------------------------------------------------------------ */

typedef struct {
    void (*fn)(void *ctx, long lo, long hi, int *rc);
    void *ctx;
    long lo;
    long hi;
    int rc;
} trial_block;

static void run_trial_block(trial_block *block)
{
    block->rc = 0;
    block->fn(block->ctx, block->lo, block->hi, &block->rc);
}

#if REPRO_THREAD_BACKEND == 1
static void *trial_block_main(void *arg)
{
    run_trial_block((trial_block *)arg);
    return NULL;
}
#endif

/* Run fn over [0, n_items) in at most n_threads contiguous blocks.
 * Block b covers [b*n_items/nb, (b+1)*n_items/nb) -- disjoint and
 * exhaustive for any nb, so output rows never alias across workers.
 * Returns 0 when every block succeeded, else the first nonzero block
 * status (callers fall back to NumPy wholesale). */
static int for_each_trial_block(void (*fn)(void *, long, long, int *),
                                void *ctx, long n_items, long n_threads)
{
    trial_block blocks[REPRO_MAX_THREADS];
    long nb, b;
    int rc = 0;

    if (n_threads < 1)
        n_threads = 1;
    if (n_threads > REPRO_MAX_THREADS)
        n_threads = REPRO_MAX_THREADS;
    if (n_threads > n_items)
        n_threads = (n_items > 0) ? n_items : 1;
#if REPRO_THREAD_BACKEND == 0
    n_threads = 1;
#endif
    nb = n_threads;
    for (b = 0; b < nb; ++b) {
        blocks[b].fn = fn;
        blocks[b].ctx = ctx;
        blocks[b].lo = b * n_items / nb;
        blocks[b].hi = (b + 1) * n_items / nb;
        blocks[b].rc = 0;
    }
    if (nb == 1) {
        run_trial_block(&blocks[0]);
        return blocks[0].rc;
    }
#if REPRO_THREAD_BACKEND == 1
    {
        pthread_t tids[REPRO_MAX_THREADS];
        long spawned = 0;

        for (b = 0; b + 1 < nb; ++b) {
            if (pthread_create(&tids[b], NULL, trial_block_main,
                               &blocks[b]) != 0)
                break; /* un-spawned blocks run inline below */
            ++spawned;
        }
        run_trial_block(&blocks[nb - 1]);
        for (b = spawned; b + 1 < nb; ++b)
            run_trial_block(&blocks[b]);
        for (b = 0; b < spawned; ++b)
            pthread_join(tids[b], NULL);
    }
#elif REPRO_THREAD_BACKEND == 2
    {
        int i;
#pragma omp parallel for num_threads((int)nb) schedule(static)
        for (i = 0; i < (int)nb; ++i)
            run_trial_block(&blocks[i]);
    }
#endif
    for (b = 0; b < nb; ++b) {
        if (blocks[b].rc != 0)
            rc = blocks[b].rc;
    }
    return rc;
}

/* ------------------------------------------------------------------ */
/* HF: hold-back 8-ary max-heap                                        */
/* ------------------------------------------------------------------ */

static void hf_one(const double *draws, double *heap, double w0, long n)
{
    double cur = w0;
    long size = 0;
    long k;

    for (k = 0; k < n - 1; ++k) {
        double a = draws[k];
        double c1 = a * cur;
        double c2 = (1.0 - a) * cur;
        double big, small;
        long i;

        if (c1 > c2) {
            big = c1;
            small = c2;
        } else {
            big = c2;
            small = c1;
        }

        /* Push the small child. */
        i = size++;
        while (i > 0) {
            long p = (i - 1) >> 3;
            if (heap[p] >= small)
                break;
            heap[i] = heap[p];
            i = p;
        }
        heap[i] = small;

        /* The big child usually stays the maximum; otherwise swap it
         * with the root and sift it down (8-ary: depth ~log8 N). */
        if (big >= heap[0]) {
            cur = big;
            continue;
        }
        cur = heap[0];
        i = 0;
        for (;;) {
            long c = 8 * i + 1;
            long end, m, j;
            double mw;

            if (c >= size)
                break;
            end = (c + 8 < size) ? c + 8 : size;
            m = c;
            mw = heap[c];
            for (j = c + 1; j < end; ++j) {
                if (heap[j] > mw) {
                    mw = heap[j];
                    m = j;
                }
            }
            if (mw <= big)
                break;
            heap[i] = mw;
            i = m;
        }
        heap[i] = big;
    }
    heap[n - 1] = cur;
}

typedef struct {
    const double *draws;
    long stride;
    const double *w0;
    double *out;
    long n;
} hf_ctx;

static void hf_trial_block(void *vctx, long lo, long hi, int *rc)
{
    hf_ctx *ctx = (hf_ctx *)vctx;
    long i;

    (void)rc; /* the HF kernel cannot fail */
    for (i = lo; i < hi; ++i)
        hf_one(ctx->draws + i * ctx->stride, ctx->out + i * ctx->n,
               ctx->w0[i], ctx->n);
}

void repro_hf_batch(const double *draws, long draws_stride,
                    const double *w0, double *out, long n_trials, long n,
                    long n_threads)
{
    hf_ctx ctx;

    ctx.draws = draws;
    ctx.stride = draws_stride;
    ctx.w0 = w0;
    ctx.out = out;
    ctx.n = n;
    (void)for_each_trial_block(hf_trial_block, &ctx, n_trials, n_threads);
}

/* ------------------------------------------------------------------ */
/* BA / BA-HF: explicit DFS stack replicating the scalar recursion     */
/* ------------------------------------------------------------------ */

/* ba_split for children with w1 >= w2 and n >= 2: the same float ops,
 * in the same order, as repro.core.ba.ba_split. */
static long ba_split_n1(double w1, double w2, long n)
{
    double eta = (double)n * w1 / (w1 + w2);
    long lo = (long)floor(eta);
    long hi = (long)ceil(eta);
    double cost_lo, cost_hi, alt;

    if (lo < 1)
        lo = 1;
    if (lo > n - 1)
        lo = n - 1;
    if (hi < 1)
        hi = 1;
    if (hi > n - 1)
        hi = n - 1;
    cost_lo = w1 / (double)lo;
    alt = w2 / (double)(n - lo);
    if (alt > cost_lo)
        cost_lo = alt;
    cost_hi = w1 / (double)hi;
    alt = w2 / (double)(n - hi);
    if (alt > cost_hi)
        cost_hi = alt;
    return (cost_lo <= cost_hi) ? lo : hi;
}

/* One BA / BA-HF trial.  threshold < 0 means plain BA (nodes stop at
 * size 1); otherwise nodes with (double)n < threshold finish with the
 * HF heap (BA-HF's switch-over).  `sw`/`sn` are caller-provided stack
 * scratch of n + 1 slots each (the DFS never grows past the recursion
 * depth + 1 <= n). */
static void ba_one(const double *row, double *orow, double w0, long n,
                   double threshold, double *sw, long *sn)
{
    long top = 0, pos = 0, k = 0;

    sw[top] = w0;
    sn[top] = n;
    ++top;
    while (top > 0) {
        double w;
        long m;

        --top;
        w = sw[top];
        m = sn[top];
        if (threshold >= 0.0 && (double)m < threshold) {
            if (m == 1) {
                orow[pos++] = w;
            } else {
                hf_one(row + k, orow + pos, w, m);
                k += m - 1;
                pos += m;
            }
            continue;
        }
        if (m == 1) {
            orow[pos++] = w;
            continue;
        }
        {
            double a = row[k++];
            double w2 = a * w;
            double w1 = w - w2;
            long n1;

            if (w1 < w2) {
                double tmp = w1;
                w1 = w2;
                w2 = tmp;
            }
            n1 = ba_split_n1(w1, w2, m);
            sw[top] = w2;
            sn[top] = m - n1;
            ++top;
            sw[top] = w1;
            sn[top] = n1;
            ++top;
        }
    }
}

typedef struct {
    const double *draws;
    long stride;
    const double *w0;
    double *out;
    long n;
    double threshold;
} ba_ctx;

static void ba_trial_block(void *vctx, long lo, long hi, int *rc)
{
    ba_ctx *ctx = (ba_ctx *)vctx;
    long n = ctx->n;
    double *sw = (double *)malloc((size_t)(n + 1) * sizeof(double));
    long *sn = (long *)malloc((size_t)(n + 1) * sizeof(long));
    long i;

    if (sw == NULL || sn == NULL) {
        free(sw);
        free(sn);
        *rc = -1;
        return;
    }
    for (i = lo; i < hi; ++i)
        ba_one(ctx->draws + i * ctx->stride, ctx->out + i * n, ctx->w0[i],
               n, ctx->threshold, sw, sn);
    free(sw);
    free(sn);
}

static int ba_like_batch(const double *draws, long draws_stride,
                         const double *w0, double *out, long n_trials,
                         long n, double threshold, long n_threads)
{
    ba_ctx ctx;

    ctx.draws = draws;
    ctx.stride = draws_stride;
    ctx.w0 = w0;
    ctx.out = out;
    ctx.n = n;
    ctx.threshold = threshold;
    return for_each_trial_block(ba_trial_block, &ctx, n_trials, n_threads);
}

int repro_ba_batch(const double *draws, long draws_stride,
                   const double *w0, double *out, long n_trials, long n,
                   long n_threads)
{
    return ba_like_batch(draws, draws_stride, w0, out, n_trials, n, -1.0,
                         n_threads);
}

int repro_bahf_batch(const double *draws, long draws_stride,
                     const double *w0, double *out, long n_trials, long n,
                     double threshold, long n_threads)
{
    return ba_like_batch(draws, draws_stride, w0, out, n_trials, n,
                         threshold, n_threads);
}

/* ------------------------------------------------------------------ */
/* PHF machine metrics (central phase 1, complete network)             */
/* ------------------------------------------------------------------ */

/* Phase-2 band entries sorted by (weight desc, proc asc) -- processor
 * ids are distinct per trial, so the order is total and qsort's
 * instability is harmless. */
typedef struct {
    double w;
    long proc;
    long col;
} band_entry;

static int band_cmp(const void *pa, const void *pb)
{
    const band_entry *a = (const band_entry *)pa;
    const band_entry *b = (const band_entry *)pb;

    if (a->w > b->w)
        return -1;
    if (a->w < b->w)
        return 1;
    if (a->proc < b->proc)
        return -1;
    if (a->proc > b->proc)
        return 1;
    return 0;
}

typedef struct {
    const double *draws;
    long stride;
    long n;
    double w0;
    double threshold;
    double band_factor;
    int keep_heavy;
    double t_b;
    double t_a;
    double t_s;
    double c;
    double *makespan;
    double *coll_time;
    long *coll_n;
    long *ctrl;
    double *maxw;
    long *status;
} phf_ctx;

/* Per-trial PHF replay of the generation-lockstep fastpath.  Outputs
 * (one slot per trial): makespan, collective time, collective count,
 * control messages, max final weight and a status code (0 ok, 1 phase 1
 * ran out of free processors, 2 phase 2 failed to converge).  Block
 * status is 0 on success, -1 on scratch allocation failure. */
static void phf_trial_block(void *vctx, long lo, long hi, int *rc)
{
    phf_ctx *p = (phf_ctx *)vctx;
    long n = p->n;
    double w0 = p->w0;
    double threshold = p->threshold;
    double band_factor = p->band_factor;
    int keep_heavy = p->keep_heavy;
    double t_b = p->t_b, t_a = p->t_a, t_s = p->t_s, c = p->c;
    double *weights = (double *)malloc((size_t)n * sizeof(double));
    long *wproc = (long *)malloc((size_t)n * sizeof(long));
    double *fw_a = (double *)malloc((size_t)n * sizeof(double));
    double *fw_b = (double *)malloc((size_t)n * sizeof(double));
    long *fp_a = (long *)malloc((size_t)n * sizeof(long));
    long *fp_b = (long *)malloc((size_t)n * sizeof(long));
    band_entry *band = (band_entry *)malloc((size_t)n * sizeof(band_entry));
    long i;

    if (weights == NULL || wproc == NULL || fw_a == NULL || fw_b == NULL ||
        fp_a == NULL || fp_b == NULL || band == NULL) {
        free(weights);
        free(wproc);
        free(fw_a);
        free(fw_b);
        free(fp_a);
        free(fp_b);
        free(band);
        *rc = -1;
        return;
    }

    for (i = lo; i < hi; ++i) {
        const double *row = p->draws + i * p->stride;
        double *fw_cur = fw_a, *fw_next = fw_b;
        long *fp_cur = fp_a, *fp_next = fp_b;
        long frontier_len = 1;
        long count = 0, acq = 0, err = 0;
        double t_gen = 0.0, p1_end = 0.0;
        double ct, t_cur, mw;
        long ncoll, nctrl, f, rounds, j;

        /* ---- phase 1: generation lockstep --------------------------- */
        fw_cur[0] = w0;
        fp_cur[0] = 1;
        while (frontier_len > 0 && !err) {
            long next_len = 0, nsplit = 0;

            for (j = 0; j < frontier_len; ++j) {
                double w = fw_cur[j];
                long proc = fp_cur[j];

                if (w <= threshold) {
                    weights[count] = w;
                    wproc[count] = proc;
                    ++count;
                    continue;
                }
                {
                    long di = acq++;
                    long dst = di + 2;
                    double a, w1, w2, keep_w, ship_w;

                    if (dst > n) {
                        err = 1;
                        break;
                    }
                    a = row[di];
                    w2 = a * w;
                    w1 = w - w2;
                    if (w1 < w2) {
                        double tmp = w1;
                        w1 = w2;
                        w2 = tmp;
                    }
                    if (keep_heavy) {
                        keep_w = w1;
                        ship_w = w2;
                    } else {
                        keep_w = w2;
                        ship_w = w1;
                    }
                    /* Event order: ship first, then keep. */
                    fw_next[next_len] = ship_w;
                    fp_next[next_len] = dst;
                    ++next_len;
                    fw_next[next_len] = keep_w;
                    fp_next[next_len] = proc;
                    ++next_len;
                    ++nsplit;
                }
            }
            if (err)
                break;
            if (nsplit > 0) {
                t_gen = ((t_gen + t_b) + t_a) + t_s;
                p1_end = t_gen;
            }
            {
                double *tmp_w = fw_cur;
                long *tmp_p = fp_cur;

                fw_cur = fw_next;
                fw_next = tmp_w;
                fp_cur = fp_next;
                fp_next = tmp_p;
            }
            frontier_len = next_len;
        }
        if (err) {
            p->status[i] = 1;
            p->makespan[i] = 0.0;
            p->coll_time[i] = 0.0;
            p->coll_n[i] = 0;
            p->ctrl[i] = 0;
            p->maxw[i] = 0.0;
            continue;
        }

        /* ---- (b)/(c): barrier + count/number free processors -------- */
        ct = 0.0;
        ct = ct + c;
        ct = ct + c;
        ncoll = 2;
        t_cur = p1_end + c;
        t_cur = t_cur + c;
        f = n - count;
        nctrl = 0;
        rounds = 0;

        /* ---- phase 2: band-peeling rounds --------------------------- */
        while (f > 0 && !err) {
            double t_at, m, band_lo, finish;
            long h, b, k, count0;

            ++rounds;
            if (rounds > n + 1) {
                err = 2;
                break;
            }
            t_at = t_cur + c; /* (d) m := max weight */
            t_at = t_at + c;  /* (e) h := band count + numbering */
            ct = ct + c;
            ct = ct + c;
            ncoll += 2;
            m = weights[0];
            for (j = 1; j < count; ++j) {
                if (weights[j] > m)
                    m = weights[j];
            }
            band_lo = m * band_factor;
            h = 0;
            for (j = 0; j < count; ++j) {
                if (weights[j] >= band_lo) {
                    band[h].w = weights[j];
                    band[h].proc = wproc[j];
                    band[h].col = j;
                    ++h;
                }
            }
            if (h > f) {
                t_at = t_at + c; /* selection collective */
                ct = ct + c;
                ++ncoll;
            }
            b = (h < f) ? h : f;
            qsort(band, (size_t)h, sizeof(band_entry), band_cmp);
            count0 = count;
            for (k = 0; k < b; ++k) {
                double a = row[acq + k];
                double pw = band[k].w;
                double w2 = a * pw;
                double w1 = pw - w2;
                double keep_w, ship_w;

                if (w1 < w2) {
                    double tmp = w1;
                    w1 = w2;
                    w2 = tmp;
                }
                if (keep_heavy) {
                    keep_w = w1;
                    ship_w = w2;
                } else {
                    keep_w = w2;
                    ship_w = w1;
                }
                weights[band[k].col] = keep_w;
                /* Free ids after a central phase 1 are contiguous
                 * {count+1..n}, so the k-th numbered free processor is
                 * count0 + 1 + k. */
                weights[count0 + k] = ship_w;
                wproc[count0 + k] = count0 + 1 + k;
            }
            acq += b;
            nctrl += b;
            count = count0 + b;
            finish = ((t_at + t_b) + t_a) + t_s;
            f -= b;
            if (f > 0) {
                finish = finish + c; /* (h) barrier */
                ct = ct + c;
                ++ncoll;
            }
            t_cur = finish;
        }
        if (err) {
            p->status[i] = 2;
            p->makespan[i] = 0.0;
            p->coll_time[i] = 0.0;
            p->coll_n[i] = 0;
            p->ctrl[i] = 0;
            p->maxw[i] = 0.0;
            continue;
        }

        mw = weights[0];
        for (j = 1; j < count; ++j) {
            if (weights[j] > mw)
                mw = weights[j];
        }
        p->status[i] = 0;
        p->makespan[i] = t_cur;
        p->coll_time[i] = ct;
        p->coll_n[i] = ncoll;
        p->ctrl[i] = nctrl;
        p->maxw[i] = mw;
    }

    free(weights);
    free(wproc);
    free(fw_a);
    free(fw_b);
    free(fp_a);
    free(fp_b);
    free(band);
}

int repro_phf_metrics(const double *draws, long draws_stride,
                      long n_trials, long n, double w0, double threshold,
                      double band_factor, int keep_heavy, double t_b,
                      double t_a, double t_s, double c, double *makespan,
                      double *coll_time, long *coll_n, long *ctrl,
                      double *maxw, long *status, long n_threads)
{
    phf_ctx ctx;

    ctx.draws = draws;
    ctx.stride = draws_stride;
    ctx.n = n;
    ctx.w0 = w0;
    ctx.threshold = threshold;
    ctx.band_factor = band_factor;
    ctx.keep_heavy = keep_heavy;
    ctx.t_b = t_b;
    ctx.t_a = t_a;
    ctx.t_s = t_s;
    ctx.c = c;
    ctx.makespan = makespan;
    ctx.coll_time = coll_time;
    ctx.coll_n = coll_n;
    ctx.ctrl = ctrl;
    ctx.maxw = maxw;
    ctx.status = status;
    return for_each_trial_block(phf_trial_block, &ctx, n_trials, n_threads);
}
