"""Shared-memory draw transport: round trips, budgets, leak hygiene.

The :mod:`repro.experiments.shm` helpers are a pure transport -- the
runners must produce bit-identical results with or without them -- so
these tests pin the helper contract directly (publish/attach/release
round trips, the byte budget, failure fallbacks) and then check the
system property that matters operationally: no ``repro_draws_*``
segments survive a sweep or study run.
"""

import glob
import os

import numpy as np
import pytest

from repro.experiments import shm
from repro.experiments.runner import StochasticConfig, run_sweep
from repro.experiments.stochastic import trial_ratios
from repro.problems.samplers import UniformAlpha


def _segments():
    return glob.glob("/dev/shm/repro_draws_*")


def _shm_backed():
    """True when POSIX shared memory is observable under /dev/shm."""
    return os.path.isdir("/dev/shm")


class TestRoundTrip:
    def test_publish_attach_release_bit_identical(self):
        rng = np.random.default_rng(42)
        mat = rng.random((17, 31))
        out = shm.publish_draws(mat)
        if out is None:
            pytest.skip("platform refused shared memory")
        block, spec = out
        try:
            name, rows, cols = spec
            assert (rows, cols) == mat.shape
            arr = shm.attached_draws(spec)
            assert arr is not None
            assert np.array_equal(arr, mat)
            assert not arr.flags.writeable
            # Repeated attaches hit the per-process cache.
            assert shm.attached_draws(spec) is arr
        finally:
            # Drop the cached mapping before unlinking so close() can't
            # hit a BufferError from our own live view.
            shm._detach_all()
            shm.release_draws(block)
        if _shm_backed():
            assert not any(name in s for s in _segments())

    def test_publish_rejects_empty_and_non_2d(self):
        assert shm.publish_draws(np.empty((0, 5))) is None
        assert shm.publish_draws(np.empty((5, 0))) is None
        assert shm.publish_draws(np.ones(5)) is None

    def test_attach_missing_segment_returns_none(self):
        assert shm.attached_draws(("repro_draws_nonexistent_xyz", 2, 2)) is None

    def test_release_tolerates_double_unlink(self):
        out = shm.publish_draws(np.ones((2, 2)))
        if out is None:
            pytest.skip("platform refused shared memory")
        block, _ = out
        shm.release_draws(block)
        shm.release_draws(block)  # must not raise


class TestBudget:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM_MAX_BYTES", raising=False)
        assert shm.max_bytes() == shm.DEFAULT_MAX_BYTES

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MAX_BYTES", "4096")
        assert shm.max_bytes() == 4096

    def test_bad_value_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MAX_BYTES", "lots")
        assert shm.max_bytes() == shm.DEFAULT_MAX_BYTES

    def test_negative_clamped_to_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MAX_BYTES", "-1")
        assert shm.max_bytes() == 0


class TestDrawsArgument:
    def test_trial_ratios_rejects_scalar_path(self):
        draws = np.full((4, 7), 0.4)
        with pytest.raises(ValueError, match="use_batch"):
            trial_ratios(
                "hf", 8, UniformAlpha(0.1, 0.5), n_trials=4, seed=1,
                use_batch=False, draws=draws,
            )

    def test_trial_ratios_rejects_row_mismatch(self):
        draws = np.full((3, 7), 0.4)
        with pytest.raises(ValueError, match="rows"):
            trial_ratios(
                "hf", 8, UniformAlpha(0.1, 0.5), n_trials=4, seed=1,
                use_batch=True, draws=draws,
            )

    def test_study_rejects_non_central_phf(self):
        from repro.experiments.runtime_study import study_trial_metrics
        from repro.simulator import MachineConfig

        draws = np.full((2, 7), 0.4)
        with pytest.raises(ValueError, match="central"):
            study_trial_metrics(
                "phf", 8, UniformAlpha(0.1, 0.5), config=MachineConfig(),
                n_trials=2, seed=1, phf_phase1="ba_prime", engine="des",
                draws=draws,
            )


@pytest.mark.skipif(not _shm_backed(), reason="no /dev/shm to observe")
class TestNoLeaks:
    BASE = dict(
        algorithms=("hf", "ba"),
        n_values=(8, 16),
        n_trials=24,
        seed=9,
        sampler=UniformAlpha(0.1, 0.5),
        chunk_size=8,
    )

    def test_sweep_leaves_no_segments(self):
        before = set(_segments())
        run_sweep(StochasticConfig(**self.BASE, n_jobs=2))
        assert set(_segments()) <= before

    def test_sweep_serial_and_parallel_bit_identical(self):
        serial = run_sweep(StochasticConfig(**self.BASE, n_jobs=1))
        parallel = run_sweep(StochasticConfig(**self.BASE, n_jobs=2))
        assert serial.records == parallel.records

    def test_failed_run_still_releases_segments(self, monkeypatch):
        # A run that dies mid-flight (worker crash surfacing as an
        # exception from the chunk executor) must not leak segments.
        import repro.experiments.runner as runner_mod

        live = {}

        def boom(tasks, worker, **kwargs):
            live["segments"] = set(_segments())
            raise RuntimeError("worker crashed")

        monkeypatch.setattr(runner_mod, "execute_chunks", boom)
        before = set(_segments())
        with pytest.raises(RuntimeError, match="worker crashed"):
            run_sweep(StochasticConfig(**self.BASE, n_jobs=2))
        # Blocks were live when the executor was entered...
        assert len(live["segments"] - before) == 4  # 2 algorithms x 2 N
        # ...and all gone after the failure propagated.
        assert set(_segments()) <= before

    def test_zero_budget_disables_shm_but_not_results(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM_MAX_BYTES", "0")
        before = set(_segments())
        gated = run_sweep(StochasticConfig(**self.BASE, n_jobs=2))
        assert set(_segments()) == before
        monkeypatch.delenv("REPRO_SHM_MAX_BYTES")
        open_budget = run_sweep(StochasticConfig(**self.BASE, n_jobs=2))
        assert gated.records == open_budget.records
