"""Bench E1 -- the λ study for BA-HF.

Paper (Section 4): for α̂ ~ U[0.1, 0.5] the average ratio of BA-HF
improves by ≈ 10% when λ goes from 1.0 to 2.0 and ≈ 5% more at λ = 3.0.
"""

import pytest

from repro.experiments.lambda_study import render_lambda_study, run_lambda_study

from _common import grid, run_once, write_artifact


def test_lambda_study_reproduction(benchmark):
    n_values, n_trials = grid()
    result = run_once(
        benchmark,
        lambda: run_lambda_study(
            lams=(1.0, 2.0, 3.0), n_trials=n_trials, n_values=n_values
        ),
    )
    write_artifact("lambda_study", render_lambda_study(result))

    # monotone improvement in lambda
    assert result.mean_ratio[1.0] > result.mean_ratio[2.0] > result.mean_ratio[3.0]

    # magnitude in the paper's ballpark: ~10% at lambda=2, a further ~5%
    # at lambda=3 (accept a generous band: "%" of ratio vs "%" of excess
    # differ and the grid is reduced)
    imp2 = result.ratio_improvement_pct[2.0]
    imp3 = result.ratio_improvement_pct[3.0] - result.ratio_improvement_pct[2.0]
    assert 3.0 < imp2 < 25.0
    assert 0.5 < imp3 < 15.0

    benchmark.extra_info["improvement_lam2_pct"] = round(imp2, 2)
    benchmark.extra_info["additional_lam3_pct"] = round(imp3, 2)
