"""Shared-memory draw-matrix blocks for the chunked runners.

The sweep and study runners are *trial-chunked*: every chunk of a cell
derives its own per-trial generators, so historically every chunk also
re-sampled its own draw matrix from scratch -- ``O(chunks)`` redundant
sampling per cell.  This module lets the parent sample each cell's
``(n_trials, N-1)`` matrix **once**, publish it in a
:class:`multiprocessing.shared_memory.SharedMemory` block, and have the
workers map chunk row-slices out of it with zero copies.

Bit-identity is free by construction: trial ``t``'s generator is a
function of ``(seed, algorithm, N, t)`` alone, so the rows of the
cell-wide matrix equal the rows any chunk would have sampled for itself.
The runners therefore treat shared memory as a pure transport: whenever
a block cannot be created (``n_jobs == 1``, zero-size matrices, the
platform refuses, or the byte budget is exhausted) or cannot be attached
(a worker landed on a machine state without the segment), the chunk
falls back to sampling its own rows, and the results are identical
either way.

This module is the **only** place in the repository allowed to touch
``multiprocessing.shared_memory`` (lint rule R010 enforces this): the
segment lifecycle -- create, attach, untrack, close, unlink -- is easy
to leak from call sites, so it stays centralized here.

* The *parent* pairs every :func:`publish_draws` with
  :func:`release_draws` (in a ``finally``); if the parent dies anyway,
  its ``resource_tracker`` unlinks the segment at interpreter exit.
* *Workers* attach via :func:`attached_draws`, which caches the mapping
  per process (one attach per cell, not per chunk); an ``atexit`` hook
  closes all cached mappings.  Pool workers share the parent's resource
  tracker, so their duplicate attach-registrations are set no-ops.
"""

from __future__ import annotations

import atexit
import itertools
import os
from multiprocessing import shared_memory
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "DEFAULT_MAX_BYTES",
    "DrawSpec",
    "attached_draws",
    "max_bytes",
    "publish_draws",
    "release_draws",
]

#: ``(segment name, rows, cols)`` -- everything a worker needs to map a
#: published float64 draw matrix.  Picklable (travels in chunk tasks).
DrawSpec = Tuple[str, int, int]

#: Default ceiling on the *total* bytes of simultaneously published
#: blocks per run (override with ``REPRO_SHM_MAX_BYTES``).  Cells whose
#: matrix would exceed the remaining budget fall back to per-chunk
#: sampling rather than exhausting ``/dev/shm``.
DEFAULT_MAX_BYTES = 1 << 30

_counter = itertools.count()

#: Per-process cache of attached segments: name -> (array, block).  The
#: array is listed first so the mapping it borrows outlives any view
#: handed out; entries live until :func:`_detach_all` at exit.
_ATTACHED: Dict[str, Tuple[np.ndarray, shared_memory.SharedMemory]] = {}


def max_bytes() -> int:
    """Per-run shared-memory byte budget (env: ``REPRO_SHM_MAX_BYTES``)."""
    raw = os.environ.get("REPRO_SHM_MAX_BYTES")
    if raw is None:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_MAX_BYTES
    return max(0, value)


def publish_draws(
    draws: np.ndarray,
) -> Optional[Tuple[shared_memory.SharedMemory, DrawSpec]]:
    """Copy a 2-D float64 draw matrix into a fresh shared-memory block.

    Returns ``(block, spec)``; the caller owns ``block`` and must pass
    it to :func:`release_draws` when the run is over.  Returns ``None``
    when publishing is impossible (zero-size matrix, or the platform
    refuses the allocation) -- callers then simply skip the shared path.
    """
    mat = np.ascontiguousarray(draws, dtype=np.float64)
    if mat.ndim != 2 or mat.nbytes == 0:
        return None
    block = None
    for _ in range(64):
        name = f"repro_draws_{os.getpid()}_{next(_counter)}"
        try:
            block = shared_memory.SharedMemory(
                name=name, create=True, size=mat.nbytes
            )
            break
        except FileExistsError:
            continue
        except OSError:
            return None
    if block is None:
        return None
    view = np.ndarray(mat.shape, dtype=np.float64, buffer=block.buf)
    view[:] = mat
    del view
    return block, (name, int(mat.shape[0]), int(mat.shape[1]))


def attached_draws(spec: DrawSpec) -> Optional[np.ndarray]:
    """Map a published draw matrix (worker side); ``None`` on failure.

    The returned array is a read-only zero-copy view; the mapping is
    cached per process and closed at interpreter exit, so repeated
    chunks of the same cell attach once.  Any :class:`OSError` (segment
    already unlinked, platform without shared memory) yields ``None``
    and the caller falls back to sampling its own rows.
    """
    name, rows, cols = spec
    cached = _ATTACHED.get(name)
    if cached is not None:
        return cached[0]
    try:
        block = shared_memory.SharedMemory(name=name)
    except OSError:
        return None
    # Attaching re-registers the segment with the resource tracker on
    # POSIX.  Pool workers share the parent's tracker process, so the
    # duplicate registration is a set no-op -- and must NOT be
    # unregistered here, or the parent's own leak protection (and its
    # eventual unlink bookkeeping) would be silently removed.
    arr = np.ndarray((rows, cols), dtype=np.float64, buffer=block.buf)
    arr.flags.writeable = False
    # The attach cache is deliberately process-local mutable state: it
    # memoizes a read-only mapping keyed by the task's DrawSpec, so the
    # worker's result is still a pure function of its task tuple.
    _ATTACHED[name] = (arr, block)  # repro-lint: disable=R104
    return arr


def release_draws(block: shared_memory.SharedMemory) -> None:
    """Close and unlink a block returned by :func:`publish_draws`.

    Idempotent in practice: an already-unlinked segment (e.g. a crashed
    run's resource tracker beat us to it) is not an error.
    """
    try:
        block.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass
    try:
        block.unlink()
    except FileNotFoundError:
        pass


def _detach_all() -> None:  # pragma: no cover - exercised at interpreter exit
    while _ATTACHED:
        _, (arr, block) = _ATTACHED.popitem()
        del arr
        try:
            block.close()
        except BufferError:
            pass


atexit.register(_detach_all)
