"""Command-line entry point: regenerate every table and figure.

Usage (installed as ``repro-experiments``, or ``python -m repro.experiments``):

    repro-experiments table1   [--trials T] [--max-n N] [--jobs J]
                               [--backend processes|threads] [--csv F]
    repro-experiments figure5  [--trials T] [--max-n N] [--jobs J] [--csv F]
    repro-experiments lambda   [--trials T] [--max-n N] [--jobs J]
    repro-experiments variance [--trials T] [--max-n N] [--jobs J]
    repro-experiments intervals [--trials T] [--max-n N] [--jobs J]
    repro-experiments nonpow2  [--trials T] [--jobs J]
    repro-experiments runtime  [--max-n N]
    repro-experiments fault    [--trials T] [--max-n N] [--fault-rates R,R,..]
    repro-experiments all      [--trials T] [--max-n N] [--jobs J]

``--full`` (or ``REPRO_FULL=1``) selects the paper-scale grid
(N up to 2^20, 1000 trials) -- expect hours of compute in pure Python.

``--journal FILE`` makes the table1/figure5 sweeps and the fault study
crash-safe: completed trial chunks are durably appended to FILE and
``--resume`` continues an interrupted run bit-identically.  ``journal
verify|status|repair|compact FILE`` maintains such files (see
:mod:`repro.experiments.journal_cli`).

``--chaos-profile NAME [--chaos-seed S]`` injects a deterministic
OS-level fault schedule (killed workers, hangs, transient errors,
delays; see :mod:`repro.chaos`) into the table1/figure5 sweeps -- the
supervised executor must still produce bit-identical results.  Off by
default; only for testing the harness itself.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.experiments.config import (
    BACKENDS,
    DEFAULT_N_VALUES,
    ENGINES,
    PAPER_N_VALUES,
    full_scale_requested,
)
from repro.experiments.figure5 import render_figure5, run_figure5
from repro.experiments.interval_study import (
    render_interval_study,
    run_interval_study,
)
from repro.experiments.lambda_study import render_lambda_study, run_lambda_study
from repro.experiments.nonpow2_study import (
    render_nonpow2_study,
    run_nonpow2_study,
)
from repro.experiments.runtime_study import (
    render_runtime_study,
    run_runtime_study,
)
from repro.experiments.table1 import render_table1, run_table1
from repro.experiments.tables import sweep_to_csv
from repro.experiments.variance_study import (
    render_variance_study,
    run_variance_study,
)
from repro.experiments.topology_study import (
    render_topology_study,
    run_topology_study,
)
from repro.experiments.distribution_study import (
    render_distribution_study,
    run_distribution_study,
)
from repro.experiments.worstcase_study import (
    render_worstcase_study,
    run_worstcase_study,
)

__all__ = ["main", "build_parser"]


def _parse_fault_rates(text: str) -> tuple:
    """Comma-separated floats in [0, 1]; argparse-friendly errors."""
    try:
        rates = tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated numbers, got {text!r}"
        ) from None
    if not rates:
        raise argparse.ArgumentTypeError("needs at least one fault rate")
    for rate in rates:
        if rate != rate or not (0.0 <= rate <= 1.0):
            raise argparse.ArgumentTypeError(
                f"fault rates must be in [0, 1], got {rate!r}"
            )
    return rates


def _parse_alpha(text: str) -> float:
    """A bisection guarantee in (0, 1/2]; argparse-friendly errors."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a number in (0, 0.5], got {text!r}"
        ) from None
    if value != value or not (0.0 < value <= 0.5):
        raise argparse.ArgumentTypeError(
            f"alpha must be in (0, 0.5], got {text!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the evaluation of 'Parallel Load Balancing for "
            "Problems with Good Bisectors' (IPPS 1999)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table1",
            "figure5",
            "lambda",
            "variance",
            "intervals",
            "nonpow2",
            "runtime",
            "fault",
            "topology",
            "worstcase",
            "distributions",
            "families",
            "report",
            "all",
        ],
        help=(
            "which artifact to regenerate ('journal verify|status|"
            "repair|compact FILE' maintains chunk journals)"
        ),
    )
    parser.add_argument("--trials", type=int, default=None, help="trials per cell")
    parser.add_argument(
        "--max-n", type=int, default=None, help="largest processor count"
    )
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="processes",
        help=(
            "parallel backend for --jobs > 1 on the chunked runners "
            "(table1/figure5/runtime/topology): worker processes "
            "('processes', default) or an in-process thread pool "
            "('threads'; the native kernels release the GIL).  Results "
            "are bit-identical either way"
        ),
    )
    parser.add_argument("--seed", type=int, default=20260706)
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default="fastpath",
        help=(
            "machine-model evaluation engine for the runtime/topology "
            "studies: closed-form batched kernels ('fastpath', default; "
            "bit-identical to the DES) or the discrete-event simulator "
            "('des')"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale grid (N up to 2^20, 1000 trials); hours of compute",
    )
    parser.add_argument(
        "--csv", type=str, default=None, help="also write raw records as CSV"
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        help="also archive the sweep (table1/figure5) as reloadable JSON",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="output path for the 'report' experiment (default REPORT.md)",
    )
    parser.add_argument(
        "--fault-rates",
        type=_parse_fault_rates,
        default=None,
        metavar="R,R,..",
        help=(
            "comma-separated fault rates in [0, 1] for the 'fault' "
            "experiment (default 0.0,0.02,0.05,0.1,0.2)"
        ),
    )
    parser.add_argument(
        "--alpha",
        type=_parse_alpha,
        default=None,
        help=(
            "fix the bisection parameter to a single value in (0, 0.5] "
            "instead of sampling it (fault experiment)"
        ),
    )
    parser.add_argument(
        "--journal",
        type=str,
        default=None,
        metavar="FILE",
        help=(
            "crash-safe mode for table1/figure5/fault: append completed "
            "trial chunks to FILE as they finish"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "with --journal: replay completed chunks from an existing "
            "journal (bit-identical) and compute only the missing ones"
        ),
    )
    parser.add_argument(
        "--chaos-profile",
        choices=sorted(_chaos_profile_names()),
        default=None,
        help=(
            "inject a deterministic OS-level fault schedule into the "
            "table1/figure5 sweep (kill/hang/transient/delay; for "
            "testing the supervised executor -- results must stay "
            "bit-identical)"
        ),
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the chaos fault schedule (default 0)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "cancel the run gracefully after SECONDS (completed chunks "
            "are flushed to the journal first; exit code 130)"
        ),
    )
    return parser


def _chaos_profile_names() -> List[str]:
    from repro.chaos import CHAOS_PROFILES

    return list(CHAOS_PROFILES)


def _grid(args: argparse.Namespace) -> tuple:
    """(n_values, n_trials) for the chosen scale."""
    full = args.full or full_scale_requested()
    n_values = PAPER_N_VALUES if full else DEFAULT_N_VALUES
    if args.max_n is not None:
        n_values = tuple(n for n in n_values if n <= args.max_n)
        if not n_values:
            raise SystemExit(f"--max-n {args.max_n} removes every N value")
    trials = args.trials if args.trials is not None else (1000 if full else 200)
    return n_values, trials


def main(argv: Optional[Sequence[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "journal":
        from repro.experiments.journal_cli import journal_main

        return journal_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    if args.experiment == "report":
        from repro.experiments.report import generate_report

        target = args.out or "REPORT.md"
        n_values, trials = _grid(args)
        path = generate_report(
            target,
            n_trials=trials,
            full=args.full or full_scale_requested(),
            max_n=args.max_n,
            seed=args.seed,
            n_jobs=args.jobs,
        )
        print(f"report written to {path}")
        return 0
    n_values, trials = _grid(args)
    kw = dict(n_trials=trials, n_values=n_values, seed=args.seed, n_jobs=args.jobs)

    outputs: List[str] = []
    csv_payload: Optional[str] = None
    json_sweep = None

    # --journal/--resume apply to the sweeps and the fault study; an
    # "all" run would have every experiment fight over one journal file,
    # so they are honoured for the single-experiment invocations only.
    journal_kw = {}
    if args.journal and args.experiment in ("table1", "figure5", "fault"):
        journal_kw = {"journal_path": args.journal, "resume": args.resume}

    # --chaos-profile/--deadline drive the supervised executor on the
    # sweep experiments; a RunReport collects the accounting either way.
    # A journaled sweep also cancels gracefully on SIGTERM (completed
    # chunks are flushed first and the exit message names the resume
    # command), so an operator's `kill` never wastes finished work.
    supervise_kw = {}
    run_report = None
    if args.experiment in ("table1", "figure5"):
        if (
            args.chaos_profile is not None
            or args.deadline is not None
            or journal_kw
        ):
            from repro.chaos import CHAOS_PROFILES, ChaosSpec, RunReport

            run_report = RunReport()
            supervise_kw["report"] = run_report
            if args.chaos_profile is not None:
                supervise_kw["chaos"] = ChaosSpec(
                    config=CHAOS_PROFILES[args.chaos_profile],
                    seed=args.chaos_seed,
                )
            if args.deadline is not None:
                supervise_kw["run_deadline"] = args.deadline
            if args.deadline is not None or journal_kw:
                supervise_kw["cancel_on_sigterm"] = True

    from repro.experiments.checkpoint import RunCancelledError

    try:
        if args.experiment in ("table1", "all"):
            result = run_table1(
                **kw,
                backend=args.backend,
                **journal_kw,
                **(supervise_kw if args.experiment == "table1" else {}),
            )
            outputs.append(render_table1(result))
            csv_payload = sweep_to_csv(result)
            json_sweep = result
        if args.experiment in ("figure5", "all"):
            result = run_figure5(
                **kw,
                backend=args.backend,
                **(journal_kw if args.experiment == "figure5" else {}),
                **(supervise_kw if args.experiment == "figure5" else {}),
            )
            outputs.append(render_figure5(result))
            if args.experiment == "figure5":
                csv_payload = sweep_to_csv(result)
                json_sweep = result
    except RunCancelledError as exc:
        print(f"run cancelled: {exc}", file=sys.stderr)
        print(f"[run report] {exc.report.summary()}", file=sys.stderr)
        if args.journal:
            print(
                f"[journal] completed chunks are in {args.journal}; "
                "re-run with --resume to continue",
                file=sys.stderr,
            )
        return 130
    finally:
        if run_report is not None and not run_report.cancelled:
            print(f"[run report] {run_report.summary()}", file=sys.stderr)
    if args.experiment in ("lambda", "all"):
        outputs.append(render_lambda_study(run_lambda_study(**kw)))
    if args.experiment in ("variance", "all"):
        outputs.append(render_variance_study(run_variance_study(**kw)))
    if args.experiment in ("intervals", "all"):
        outputs.append(render_interval_study(run_interval_study(**kw)))
    if args.experiment in ("nonpow2", "all"):
        outputs.append(
            render_nonpow2_study(
                run_nonpow2_study(
                    n_trials=trials, seed=args.seed, n_jobs=args.jobs
                )
            )
        )
    if args.experiment in ("runtime", "all"):
        runtime_ns = tuple(
            n for n in (2**k for k in range(2, 11)) if args.max_n is None or n <= args.max_n
        )
        outputs.append(
            render_runtime_study(
                run_runtime_study(
                    n_values=runtime_ns,
                    seed=args.seed,
                    engine=args.engine,
                    n_jobs=args.jobs,
                    backend=args.backend,
                )
            )
        )
    if args.experiment in ("fault", "all"):
        from repro.experiments.fault_study import (
            DEFAULT_FAULT_RATES,
            render_fault_study,
            run_fault_study,
        )
        from repro.problems.samplers import FixedAlpha

        fault_ns = tuple(
            n for n in (32, 64) if args.max_n is None or n <= args.max_n
        )
        if not fault_ns:
            fault_ns = (32,)
        fault_result = run_fault_study(
            n_values=fault_ns,
            fault_rates=args.fault_rates or DEFAULT_FAULT_RATES,
            sampler=FixedAlpha(args.alpha) if args.alpha is not None else None,
            n_trials=min(trials, 50) if args.experiment == "all" else trials,
            seed=args.seed,
            n_jobs=args.jobs,
            **(journal_kw if args.experiment == "fault" else {}),
        )
        outputs.append(render_fault_study(fault_result))
        if args.experiment == "fault":
            header = list(fault_result.records[0].as_dict())
            rows = [
                ",".join(str(rec.as_dict()[k]) for k in header)
                for rec in fault_result.records
            ]
            csv_payload = "\n".join([",".join(header)] + rows) + "\n"
    if args.experiment in ("topology", "all"):
        topo_ns = tuple(
            n for n in (16, 64, 256) if args.max_n is None or n <= args.max_n
        )
        outputs.append(
            render_topology_study(
                run_topology_study(
                    n_values=topo_ns,
                    seed=args.seed,
                    engine=args.engine,
                    n_jobs=args.jobs,
                    backend=args.backend,
                )
            )
        )
    if args.experiment in ("worstcase", "all"):
        outputs.append(render_worstcase_study(run_worstcase_study(seed=args.seed)))
    if args.experiment in ("families", "all"):
        from repro.experiments.families_study import (
            render_families_study,
            run_families_study,
        )

        outputs.append(
            render_families_study(
                run_families_study(
                    n_instances=max(5, trials // 20), seed=args.seed
                )
            )
        )
    if args.experiment in ("distributions", "all"):
        dist_ns = tuple(
            n for n in (32, 128, 512) if args.max_n is None or n <= args.max_n
        )
        outputs.append(
            render_distribution_study(
                run_distribution_study(
                    n_trials=trials, n_values=dist_ns, seed=args.seed, n_jobs=args.jobs
                )
            )
        )

    print("\n\n".join(outputs))
    if args.csv and csv_payload is not None:
        from repro.experiments.io import write_atomic

        try:
            write_atomic(args.csv, csv_payload)
        except OSError as exc:
            print(f"error: cannot write csv to {args.csv}: {exc}", file=sys.stderr)
            return 1
        print(f"\n[csv written to {args.csv}]", file=sys.stderr)
    if args.json and json_sweep is not None:
        from repro.experiments.io import save_sweep

        try:
            save_sweep(json_sweep, args.json)
        except OSError as exc:
            print(f"error: cannot write json to {args.json}: {exc}", file=sys.stderr)
            return 1
        print(f"[json written to {args.json}]", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
